"""Multi-parameter sweep grids as resumable frontier sets.

``sweep_scenario`` sweeps one dotted parameter over a list of values; a
:class:`GridSpec` generalizes that to the cross product of several axes
(``algorithm.gamma`` x ``feedback.lam`` x ...).  Every grid point is

* a **derived spec** — the base :class:`~repro.scenario.ScenarioSpec`
  with each axis value applied via ``with_param``;
* a **digest** — :func:`repro.scenario.sweep_point_digest` over the
  derived spec, the coordinate, the horizon/trials/run-params, and the
  point seed.  Single-axis grids produce digests *identical* to classic
  store-backed ``sweep_scenario`` points, so stores populated by one
  are resumable by the other;
* a **seed root** — :func:`repro.scenario.sweep_point_seed`, a pure
  function of the point's own identity, so adding an axis value never
  reshuffles the seeds (and records) of existing points.

Because every point is content-addressed, a grid is not a work *list*
but a work *frontier set*: any number of workers can look at the same
store, see which digests are committed, and lease the rest — the basis
of :mod:`repro.sched.worker`.  The grid itself is plain JSON data
(:meth:`GridSpec.to_json`), persisted into the store so workers on
other processes or machines reconstruct it without any channel beyond
the shared filesystem.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np
import numpy.typing as npt

from repro._version import __version__
from repro.exceptions import ConfigurationError
from repro.scenario.runner import sweep_point_digest, sweep_point_seed
from repro.scenario.spec import ScenarioSpec
from repro.sim.runner import TrialSummary
from repro.store import STORE_FORMAT, canonical_json, digest_hex
from repro.store.records import Record
from repro.util.validation import check_integer

__all__ = ["GridAxis", "GridPoint", "GridSpec", "point_record", "point_summary"]


def _canonical_values(parameter: str, values: Any) -> tuple[Any, ...]:
    values = list(values) if not isinstance(values, (str, bytes)) else None
    if values is None or not values:
        raise ConfigurationError(
            f"grid axis {parameter!r} needs a non-empty list of values"
        )
    try:
        # canonical_json (not bare json.dumps) so the normalized values
        # are exactly what the digest layer will see — RPR003.
        return tuple(json.loads(canonical_json(values)))
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(
            f"grid axis {parameter!r} values must be JSON-serializable "
            f"(plain numbers / strings / lists, no NaN): {exc}"
        ) from exc


@dataclass(frozen=True)
class GridAxis:
    """One swept dimension: a dotted component param and its values."""

    parameter: str
    values: tuple[Any, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.parameter, str) or "." not in self.parameter:
            raise ConfigurationError(
                f"grid axes sweep component params like 'algorithm.gamma'; "
                f"got {self.parameter!r} (top-level fields are fixed per grid "
                "— the scheduler supplies rounds and per-point seeds)"
            )
        object.__setattr__(self, "values", _canonical_values(self.parameter, self.values))

    def to_dict(self) -> dict[str, Any]:
        return {"parameter": self.parameter, "values": list(self.values)}

    @classmethod
    def from_dict(cls, data: "Mapping[str, Any] | GridAxis") -> "GridAxis":
        if isinstance(data, cls):
            return data
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"grid axis must be a dict or GridAxis, got {type(data).__name__}"
            )
        unknown = set(data) - {"parameter", "values"}
        if unknown:
            raise ConfigurationError(f"unknown grid axis keys {sorted(unknown)}")
        return cls(parameter=data.get("parameter"), values=data.get("values", ()))


@dataclass(frozen=True)
class GridPoint:
    """One materialized grid point: coordinate, derived spec, identity."""

    index: int
    coords: dict[str, Any]
    spec: ScenarioSpec
    seed: int
    digest: str

    @property
    def label(self) -> str:
        """``"p=v"`` per axis — matches ``sweep_scenario`` on one axis."""
        return ",".join(f"{p}={v}" for p, v in self.coords.items())


@dataclass(frozen=True)
class GridSpec:
    """A cross-product sweep over a base scenario, as plain data.

    Parameters
    ----------
    spec:
        The base scenario (its ``seed`` is the grid's root seed).
    axes:
        Swept dimensions (``GridAxis`` instances or plain dicts); points
        enumerate the cross product in row-major order, last axis
        fastest.
    rounds:
        Horizon per point; defaults to ``spec.rounds``.
    trials:
        Trials per point.
    run_overrides:
        Extra ``run()`` kwargs merged over ``spec.run_params`` (exactly
        like ``sweep_scenario``'s keyword overrides).
    """

    spec: ScenarioSpec
    axes: tuple[GridAxis, ...]
    rounds: int | None = None
    trials: int = 5
    run_overrides: dict[str, Any] = field(default_factory=dict)
    _points: tuple[GridPoint, ...] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if isinstance(self.spec, Mapping):
            object.__setattr__(self, "spec", ScenarioSpec.from_dict(dict(self.spec)))
        if not isinstance(self.spec, ScenarioSpec):
            raise ConfigurationError(
                f"grid spec must be a ScenarioSpec or dict, got {type(self.spec).__name__}"
            )
        axes = tuple(GridAxis.from_dict(axis) for axis in self.axes)
        if not axes:
            raise ConfigurationError("a grid needs at least one axis")
        parameters = [axis.parameter for axis in axes]
        if len(set(parameters)) != len(parameters):
            raise ConfigurationError(f"duplicate grid axis parameters in {parameters}")
        object.__setattr__(self, "axes", axes)
        rounds = self.spec.rounds if self.rounds is None else self.rounds
        object.__setattr__(self, "rounds", check_integer("rounds", rounds, minimum=1))
        object.__setattr__(self, "trials", check_integer("trials", self.trials, minimum=1))
        try:
            run_overrides = json.loads(canonical_json(dict(self.run_overrides)))
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(f"run_overrides must be JSON-serializable: {exc}") from exc
        object.__setattr__(self, "run_overrides", run_overrides)
        burn_in = self.run_params.get("burn_in")
        if burn_in is not None and burn_in >= self.rounds:
            # The same check ScenarioSpec makes against its own rounds;
            # a grid overriding the horizon must re-make it here so a
            # misconfigured grid fails at construction, not inside N
            # worker processes.
            raise ConfigurationError(
                f"run_params burn_in={burn_in} must be < rounds={self.rounds}"
            )
        # Validate every coordinate eagerly (a typo'd axis value must
        # fail at grid construction, not in some worker process) and
        # memoize the points — identity work is pure function of self.
        object.__setattr__(self, "_points", self._make_points())

    # ------------------------------------------------------------------
    @property
    def parameters(self) -> list[str]:
        return [axis.parameter for axis in self.axes]

    @property
    def run_params(self) -> dict[str, Any]:
        """The merged run kwargs every point executes with."""
        return {**self.spec.run_params, **self.run_overrides}

    @property
    def n_points(self) -> int:
        n = 1
        for axis in self.axes:
            n *= len(axis.values)
        return n

    def _make_points(self) -> tuple[GridPoint, ...]:
        parameters = self.parameters
        run_params = self.run_params
        points = []
        for index, combo in enumerate(
            itertools.product(*(axis.values for axis in self.axes))
        ):
            dspec = self.spec
            for parameter, value in zip(parameters, combo):
                dspec = dspec.with_param(parameter, value)
            seed = sweep_point_seed(dspec, parameters, list(combo), self.spec.seed)
            digest = sweep_point_digest(
                dspec,
                parameters,
                list(combo),
                rounds=self.rounds,
                trials=self.trials,
                run_params=run_params,
                point_seed=seed,
            )
            points.append(
                GridPoint(
                    index=index,
                    coords=dict(zip(parameters, combo)),
                    spec=dspec,
                    seed=seed,
                    digest=digest,
                )
            )
        return tuple(points)

    def points(self) -> tuple[GridPoint, ...]:
        """Every grid point, in canonical (row-major) order."""
        return self._points

    def closeness_inputs(self) -> tuple[float | None, float | None]:
        """``(gamma_star, total_demand)`` for trial summaries (base spec)."""
        if self.spec.gamma_star is None:
            return None, None
        return self.spec.gamma_star, float(self.spec.initial_demand().total)

    # ------------------------------------------------------------------
    def grid_digest(self) -> str:
        """Content digest identifying this grid (its directory name)."""
        return digest_hex(
            {
                "format": STORE_FORMAT,
                "kind": "sweep_grid",
                "spec": self.spec.to_dict(),
                "axes": [axis.to_dict() for axis in self.axes],
                "rounds": self.rounds,
                "trials": self.trials,
                "run_overrides": self.run_overrides,
            }
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "spec": self.spec.to_dict(),
            "axes": [axis.to_dict() for axis in self.axes],
            "rounds": self.rounds,
            "trials": self.trials,
            "run_overrides": json.loads(canonical_json(self.run_overrides)),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "GridSpec":
        if not isinstance(data, Mapping):
            raise ConfigurationError(f"grid spec must be a dict, got {type(data).__name__}")
        known = {"spec", "axes", "rounds", "trials", "run_overrides"}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown grid spec keys {sorted(unknown)}; known: {sorted(known)}"
            )
        for required in ("spec", "axes"):
            if data.get(required) is None:
                raise ConfigurationError(f"grid spec needs {required!r}")
        kwargs = {k: v for k, v in data.items() if v is not None or k == "rounds"}
        return cls(**kwargs)

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "GridSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"invalid grid JSON: {exc}") from exc
        return cls.from_dict(data)


# ----------------------------------------------------------------------
# Record (de)serialization for grid points


def point_record(
    point: GridPoint, summary: TrialSummary
) -> tuple[dict[str, npt.NDArray[np.float64]], dict[str, Any]]:
    """``(arrays, meta)`` persisting one computed grid point.

    Deliberately contains no wall-clock field: together with the
    deterministic payload serialization this makes scheduler-written
    stores *byte-comparable* — the kill-recovery guarantee is checked
    by diffing ``results/`` trees, and a timestamp would make every
    diff noisy.  The coordinate uses the same scalar-or-lists forms as
    :func:`~repro.scenario.sweep_point_digest`, so single-axis records
    stay readable by ``sweep_scenario`` resumes.
    """
    arrays: dict[str, npt.NDArray[np.float64]] = {
        "average_regrets": summary.average_regrets,
        "max_abs_deficits": summary.max_abs_deficits,
        "switches_per_round": summary.switches_per_round,
    }
    if summary.closenesses is not None:
        arrays["closenesses"] = summary.closenesses
    parameters = list(point.coords)
    values = list(point.coords.values())
    meta = {
        "kind": "sweep_point",
        "label": summary.label,
        "trials": summary.trials,
        "rounds": summary.rounds,
        "parameter": parameters[0] if len(parameters) == 1 else parameters,
        "value": values[0] if len(values) == 1 else values,
        "repro_version": __version__,
    }
    return arrays, meta


def point_summary(point: GridPoint, record: Record) -> TrialSummary | None:
    """Rebuild a point's summary from its record, or ``None`` if foreign."""
    meta, arrays = record.meta, record.arrays
    if meta.get("kind") != "sweep_point":
        return None
    try:
        return TrialSummary(
            label=str(meta["label"]),
            trials=int(meta["trials"]),
            rounds=int(meta["rounds"]),
            average_regrets=arrays["average_regrets"],
            closenesses=arrays.get("closenesses"),
            max_abs_deficits=arrays["max_abs_deficits"],
            switches_per_round=arrays["switches_per_round"],
            results=[],
            params=dict(point.coords),
        )
    except (KeyError, TypeError, ValueError):
        return None
