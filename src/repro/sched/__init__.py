"""Store-backed distributed sweep scheduler: leased grid points, crash recovery.

The experiments of the paper are parameter sweeps, and
:func:`~repro.scenario.sweep_scenario` already made single-axis sweeps
resumable through the content-addressed :mod:`repro.store`.  This
package scales that idea out:

* :mod:`repro.sched.grid` — :class:`GridSpec` generalizes sweeps to
  multi-parameter cross products whose points are content-addressed
  (digest-compatible with classic sweeps on one axis), turning a grid
  into a resumable *frontier set* rather than a work list.
* :mod:`repro.sched.leases` — crash-tolerant exclusive claims:
  ``O_EXCL`` lease files under the store, mtime heartbeats, and
  TTL-based reclaim so a SIGKILL'd worker's points are re-leased.
  Double execution after a reclaim is *safe* because commits are
  idempotent digest-keyed records with deterministic bytes.
* :mod:`repro.sched.worker` — the claim → execute → commit → release
  loop, byte-compatible with store-backed ``sweep_scenario``.
* :mod:`repro.sched.scheduler` — grid persistence (``grid.json`` in the
  store), frontier status, the N-process orchestrator
  (:func:`run_grid`), and result collection (:func:`collect_grid`).

Quick use::

    from repro.scenario import ScenarioSpec
    from repro.sched import GridSpec, run_grid, collect_grid

    grid = GridSpec(
        spec=ScenarioSpec.from_json(open("scenario.json").read()),
        axes=[
            {"parameter": "algorithm.gamma", "values": [0.01, 0.02, 0.04]},
            {"parameter": "feedback.lam", "values": [20.0, 40.0]},
        ],
        trials=4,
    )
    run_grid("results/grid", grid, workers=4, shared_pi_cache=True)
    result = collect_grid("results/grid", grid)
    print(result.series().reshape(result.shape))

Multiple machines sharing a filesystem cooperate with no extra
configuration: each runs ``repro-experiments sched work <dir>`` against
the same store directory.
"""

from repro.sched.grid import GridAxis, GridPoint, GridSpec, point_record, point_summary
from repro.sched.leases import DEFAULT_LEASE_TTL, Lease, LeaseManager
from repro.sched.scheduler import (
    GRID_MANIFEST,
    GridResult,
    collect_grid,
    format_status,
    grid_status,
    init_grid,
    load_grid,
    run_grid,
)
from repro.sched.worker import WorkerStats, run_worker

__all__ = [
    "DEFAULT_LEASE_TTL",
    "GRID_MANIFEST",
    "GridAxis",
    "GridPoint",
    "GridResult",
    "GridSpec",
    "Lease",
    "LeaseManager",
    "WorkerStats",
    "collect_grid",
    "format_status",
    "grid_status",
    "init_grid",
    "load_grid",
    "point_record",
    "point_summary",
    "run_grid",
    "run_worker",
]
