"""E12-E15: tradeoffs, dynamics, and ablations.

E12 quantifies the learning-rate tradeoff the paper discusses (smaller
``gamma``: better steady regret, slower convergence).  E13 exercises
Remark 3.4's dynamic demands (step change mid-run, re-convergence).
E14 is the design ablation for the *two spaced samples* (a one-sample
variant churns).  E15 checks Remark 3.4's correlated-feedback robustness.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import format_table
from repro.core.ant import AntAlgorithm, OneSampleAntAlgorithm
from repro.env.critical import lambda_for_critical_value
from repro.env.demands import StepDemandSchedule, uniform_demands
from repro.env.feedback import CorrelatedSigmoidFeedback, SigmoidFeedback
from repro.experiments.base import Claim, ExperimentResult, experiment
from repro.sim.counting import CountingSimulator
from repro.sim.engine import Simulator

__all__ = [
    "run_e12_gamma_tradeoff",
    "run_e13_dynamic_demands",
    "run_e14_one_sample_ablation",
    "run_e15_correlated_feedback",
]


def _rounds_to_converge(loads: np.ndarray, demands: np.ndarray, gamma: float) -> int:
    """First recorded round index where every |deficit| <= 5*gamma*d + 3."""
    band = 5.0 * gamma * demands.astype(float) + 3.0
    ok = np.all(np.abs(demands[np.newaxis, :] - loads) <= band[np.newaxis, :], axis=1)
    idx = np.argmax(ok)
    return int(idx) if ok.any() else int(loads.shape[0])


@experiment("E12", "Learning-rate tradeoff: steady regret vs convergence time")
def run_e12_gamma_tradeoff(scale: str = "full", seed: int = 0) -> ExperimentResult:
    # The counting engine makes the per-round cost independent of n, so
    # both scales use the same colony (d=1000 keeps every sweep point in
    # the regime where the resting band is non-empty: c_s*gamma*d must
    # clear 2*gamma**d plus the O(sqrt(c_s*gamma*d)) pause noise).
    n = 8000
    demand = uniform_demands(n=n, k=4)
    gs = 0.0025
    lam = lambda_for_critical_value(demand, gamma_star=gs)
    gammas = [0.01, 0.02, 0.04, 0.0625]
    rounds = 60000 if scale != "quick" else 15000

    rows, steady, conv = [], [], []
    for i, gamma in enumerate(gammas):
        sim = CountingSimulator(
            AntAlgorithm(gamma=gamma), demand, SigmoidFeedback(lam), seed=seed + i
        )
        out = sim.run(rounds, trace_stride=1, burn_in=rounds // 2)
        t_conv = _rounds_to_converge(
            out.trace.loads.astype(float), demand.as_array(), gamma
        )
        c = out.metrics.closeness(gs, demand.total)
        steady.append(c)
        conv.append(t_conv)
        rows.append([gamma, c, t_conv])

    res = ExperimentResult("E12", run_e12_gamma_tradeoff.title, scale)
    res.series["gamma"] = np.array(gammas)
    res.series["steady_closeness"] = np.array(steady)
    res.series["rounds_to_converge"] = np.array(conv, dtype=float)
    res.tables.append(
        format_table(
            ["gamma", "steady closeness", "rounds to enter 5*gamma*d band"],
            rows,
            title=f"Algorithm Ant tradeoff, gamma*={gs}, n={n} (start: all idle)",
        )
    )
    res.claims += [
        Claim.shape(
            "steady closeness increases with gamma",
            bool(np.all(np.diff(steady) > 0)),
        ),
        Claim.shape(
            "convergence time decreases with gamma",
            bool(np.all(np.diff(conv) <= 0)),
        ),
    ]
    return res


@experiment("E13", "Remark 3.4: self-stabilization under a demand step change")
def run_e13_dynamic_demands(scale: str = "full", seed: int = 0) -> ExperimentResult:
    n = 8000 if scale != "quick" else 4000
    k = 4
    base = uniform_demands(n=n, k=k)
    # Mid-run, shift demand between tasks (keep the total constant).
    shifted = base.with_demands(
        base.as_array() + np.array([base.min_demand // 2, -(base.min_demand // 2), 0, 0])
    )
    rounds = 40000 if scale != "quick" else 10000
    change_at = rounds // 2
    schedule = StepDemandSchedule(steps=((0, base), (change_at, shifted)))
    gs = 0.01
    lam = lambda_for_critical_value(base, gamma_star=gs)
    gamma = 0.025

    sim = CountingSimulator(AntAlgorithm(gamma=gamma), schedule, SigmoidFeedback(lam), seed=seed)
    out = sim.run(rounds, trace_stride=1)
    loads = out.trace.loads.astype(float)

    # Closeness in the two steady windows (before and after the change).
    def window_closeness(lo: int, hi: int, demands: np.ndarray) -> float:
        w = loads[lo:hi]
        r = np.abs(demands[np.newaxis, :] - w).sum(axis=1).mean()
        return float(r / (gs * demands.sum()))

    pre = window_closeness(change_at // 2, change_at, base.as_array())
    post = window_closeness((rounds + change_at) // 2, rounds, shifted.as_array())
    # Re-convergence time after the change.
    post_loads = loads[change_at:]
    reconv = _rounds_to_converge(post_loads, shifted.as_array(), gamma)

    res = ExperimentResult("E13", run_e13_dynamic_demands.title, scale)
    res.tables.append(
        format_table(
            ["window", "closeness"],
            [
                ["steady before change", pre],
                ["steady after change", post],
                ["re-convergence rounds", float(reconv)],
            ],
            title=f"Demand step at round {change_at}: {base.as_array()} -> {shifted.as_array()}",
        )
    )
    bound = 5.0 * gamma / gs
    res.claims += [
        Claim.upper("closeness before the change", pre, bound),
        Claim.upper("closeness after the change", post, bound),
        Claim.upper("re-convergence within a quarter of the horizon", float(reconv), rounds / 4),
    ]
    res.series["deficit_task0"] = (
        schedule.demands_at(rounds).as_array()[0] - loads[:: max(rounds // 200, 1), 0]
    )
    return res


@experiment("E14", "Ablation: two spaced samples vs one sample (stable zone matters)")
def run_e14_one_sample_ablation(scale: str = "full", seed: int = 0) -> ExperimentResult:
    n = 8000 if scale != "quick" else 4000
    demand = uniform_demands(n=n, k=4)
    gs = 0.01
    lam = lambda_for_critical_value(demand, gamma_star=gs)
    gamma = 0.025
    rounds = 16000 if scale != "quick" else 6000
    burn = rounds // 2

    out_two = Simulator(
        AntAlgorithm(gamma=gamma), demand, SigmoidFeedback(lam), seed=seed
    ).run(rounds, burn_in=burn)
    out_one = Simulator(
        OneSampleAntAlgorithm(gamma=gamma), demand, SigmoidFeedback(lam), seed=seed
    ).run(rounds, burn_in=burn)

    c_two = out_two.metrics.closeness(gs, demand.total)
    c_one = out_one.metrics.closeness(gs, demand.total)
    s_two = out_two.metrics.switches_per_round
    s_one = out_one.metrics.switches_per_round

    res = ExperimentResult("E14", run_e14_one_sample_ablation.title, scale)
    res.tables.append(
        format_table(
            ["variant", "closeness", "switches/round", "max|deficit|"],
            [
                [
                    "two spaced samples (Algorithm Ant)",
                    c_two,
                    s_two,
                    out_two.metrics.max_abs_deficit,
                ],
                ["one sample (ablation)", c_one, s_one, out_one.metrics.max_abs_deficit],
            ],
            title=f"Sample-spacing ablation, gamma={gamma}, n={n}",
        )
    )
    res.claims += [
        Claim.shape(
            "one-sample variant is at least 2x worse in closeness",
            c_one >= 2.0 * c_two,
            measured=c_one / max(c_two, 1e-12),
            bound=2.0,
        ),
        Claim.upper("two-sample closeness within Theorem 3.1 bound", c_two, 5.0 * gamma / gs),
    ]
    return res


@experiment("E15", "Remark 3.4: robustness to correlated feedback")
def run_e15_correlated_feedback(scale: str = "full", seed: int = 0) -> ExperimentResult:
    n = 8000 if scale != "quick" else 4000
    demand = uniform_demands(n=n, k=4)
    gs = 0.01
    lam = lambda_for_critical_value(demand, gamma_star=gs)
    gamma = 0.025
    rounds = 16000 if scale != "quick" else 6000
    burn = rounds // 2
    rhos = [0.0, 0.5, 1.0]

    rows, closenesses = [], []
    for i, rho in enumerate(rhos):
        fb = (
            SigmoidFeedback(lam)
            if rho == 0.0
            else CorrelatedSigmoidFeedback(lam, rho=rho)
        )
        out = Simulator(AntAlgorithm(gamma=gamma), demand, fb, seed=seed + i).run(
            rounds, burn_in=burn
        )
        c = out.metrics.closeness(gs, demand.total)
        closenesses.append(c)
        rows.append([rho, c, out.metrics.max_abs_deficit])

    res = ExperimentResult("E15", run_e15_correlated_feedback.title, scale)
    res.tables.append(
        format_table(
            ["correlation rho", "closeness", "max|deficit|"],
            rows,
            title=f"Algorithm Ant under correlated sigmoid feedback, gamma={gamma}",
        )
    )
    bound = 5.0 * gamma / gs
    for rho, c in zip(rhos, closenesses):
        res.claims.append(Claim.upper(f"closeness at rho={rho}", c, bound))
    res.series["rho"] = np.array(rhos)
    res.series["closeness"] = np.array(closenesses)
    return res
