"""E3 / E4 / E5: the closeness theorems (3.1 and 3.2).

E3 sweeps Algorithm Ant's learning rate under both noise models and
compares the measured closeness with the ``5 gamma / gamma*`` bound.
E4 verifies self-stabilization: the same steady state is reached from
adversarial initial configurations.  E5 sweeps Algorithm Precise
Sigmoid's precision ``eps`` and verifies the ``eps * gamma * sum_d``
regret rate (linear in eps) — the separation from Algorithm Ant.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import format_table
from repro.analysis.theory import ant_closeness_bound, precise_sigmoid_rate
from repro.core.ant import AntAlgorithm
from repro.core.precise_sigmoid import PreciseSigmoidAlgorithm
from repro.env.adversary import RandomInGreyZone
from repro.env.critical import lambda_for_critical_value
from repro.env.demands import uniform_demands
from repro.env.feedback import AdversarialFeedback, SigmoidFeedback
from repro.experiments.base import Claim, ExperimentResult, experiment
from repro.sim.counting import CountingSimulator
from repro.sim.engine import Simulator

__all__ = ["run_e3_ant_closeness", "run_e4_self_stabilization", "run_e5_precise_sigmoid"]

_E3_GAMMA_STAR = 0.01


def _e3_colony(scale: str):
    n = 8000 if scale != "quick" else 4000
    demand = uniform_demands(n=n, k=4)
    lam = lambda_for_critical_value(demand, gamma_star=_E3_GAMMA_STAR)
    return demand, lam


@experiment("E3", "Theorem 3.1: Algorithm Ant closeness <= 5*gamma/gamma*, both noise models")
def run_e3_ant_closeness(scale: str = "full", seed: int = 0) -> ExperimentResult:
    demand, lam = _e3_colony(scale)
    gs = _E3_GAMMA_STAR
    rounds = 40000 if scale != "quick" else 8000
    burn = rounds // 2
    trials = 3 if scale != "quick" else 2
    gammas = [2 * gs, 2.5 * gs, 4 * gs, 6 * gs]

    rows = []
    sig_closeness, adv_closeness, bounds = [], [], []
    for i, gamma in enumerate(gammas):
        bound = ant_closeness_bound(gamma, gs)
        # Sigmoid noise: counting engine (exact in distribution, O(k)/round).
        c_sig = []
        for trial in range(trials):
            sim = CountingSimulator(
                AntAlgorithm(gamma=gamma), demand, SigmoidFeedback(lam),
                seed=seed + 1000 * i + trial,
            )
            out = sim.run(rounds, burn_in=burn)
            c_sig.append(out.metrics.closeness(gs, demand.total))
        # Adversarial noise (random-in-grey): agent engine, fewer rounds.
        adv_rounds = rounds // 2
        c_adv = []
        for trial in range(trials):
            fb = AdversarialFeedback(gamma_ad=gs, strategy=RandomInGreyZone())
            sim = Simulator(
                AntAlgorithm(gamma=gamma), demand, fb, seed=seed + 5000 + 1000 * i + trial
            )
            out = sim.run(adv_rounds, burn_in=adv_rounds // 2)
            c_adv.append(out.metrics.closeness(gs, demand.total))
        ms, ma = float(np.mean(c_sig)), float(np.mean(c_adv))
        sig_closeness.append(ms)
        adv_closeness.append(ma)
        bounds.append(bound)
        rows.append([f"{gamma / gs:.1f}", ms, ma, bound])

    res = ExperimentResult("E3", run_e3_ant_closeness.title, scale)
    res.series["gamma_over_gamma_star"] = np.array([g / gs for g in gammas])
    res.series["closeness_sigmoid"] = np.array(sig_closeness)
    res.series["closeness_adversarial"] = np.array(adv_closeness)
    res.series["bound"] = np.array(bounds)
    res.tables.append(
        format_table(
            ["gamma/gamma*", "closeness (sigmoid)", "closeness (adversarial)", "bound 5g/g*"],
            rows,
            title=f"Algorithm Ant closeness, n={demand.n}, k={demand.k}, d={demand.min_demand}",
        )
    )
    for g, ms, ma, b in zip(gammas, sig_closeness, adv_closeness, bounds):
        res.claims.append(Claim.upper(f"sigmoid closeness at gamma={g:g}", ms, b))
        res.claims.append(Claim.upper(f"adversarial closeness at gamma={g:g}", ma, b))
    # Shape: closeness grows with gamma (the bound is linear in gamma).
    res.claims.append(
        Claim.shape(
            "closeness increases with gamma (sigmoid)",
            bool(np.all(np.diff(sig_closeness) > 0)),
        )
    )
    return res


@experiment("E4", "Theorem 3.1: self-stabilization from adversarial initial configurations")
def run_e4_self_stabilization(scale: str = "full", seed: int = 0) -> ExperimentResult:
    demand, lam = _e3_colony(scale)
    gs = _E3_GAMMA_STAR
    gamma = 0.025
    rounds = 30000 if scale != "quick" else 8000
    burn = rounds // 2
    n, k = demand.n, demand.k

    starts = {
        "all_idle": np.zeros(k, dtype=np.int64),
        "all_on_first_task": np.array([n] + [0] * (k - 1), dtype=np.int64),
        "demand_matched": demand.as_array(),
        "half_demand": demand.as_array() // 2,
    }
    rows, finals = [], {}
    for i, (name, loads0) in enumerate(starts.items()):
        sim = CountingSimulator(
            AntAlgorithm(gamma=gamma), demand, SigmoidFeedback(lam),
            seed=seed + i, initial_loads=loads0,
        )
        out = sim.run(rounds, burn_in=burn)
        c = out.metrics.closeness(gs, demand.total)
        finals[name] = c
        rows.append([name, c, float(np.abs(out.metrics.final_deficits).max())])

    res = ExperimentResult("E4", run_e4_self_stabilization.title, scale)
    res.tables.append(
        format_table(
            ["initial configuration", "steady closeness", "final max|deficit|"],
            rows,
            title=f"Algorithm Ant, gamma={gamma}, n={n}",
        )
    )
    bound = ant_closeness_bound(gamma, gs)
    for name, c in finals.items():
        res.claims.append(Claim.upper(f"closeness from {name}", c, bound))
    spread = max(finals.values()) - min(finals.values())
    res.claims.append(
        Claim.upper("steady closeness independent of start (spread)", spread, 0.5 * bound)
    )
    return res


@experiment("E5", "Theorem 3.2: Precise Sigmoid regret rate = eps*gamma*sum_d (linear in eps)")
def run_e5_precise_sigmoid(scale: str = "full", seed: int = 0) -> ExperimentResult:
    n = 80000 if scale != "quick" else 40000
    demand = uniform_demands(n=n, k=4)
    gs = 0.01
    lam = lambda_for_critical_value(demand, gamma_star=gs)
    gamma = 0.04
    rounds = 200000 if scale != "quick" else 40000
    burn = rounds // 10
    eps_values = [0.999, 0.5, 0.25]

    rows, rates, theory = [], [], []
    ant_c = None
    for i, eps in enumerate(eps_values):
        alg = PreciseSigmoidAlgorithm(gamma=gamma, eps=eps)
        start = np.round(demand.as_array() * (1.0 + 2.0 * alg.step_size)).astype(np.int64)
        sim = CountingSimulator(
            alg, demand, SigmoidFeedback(lam), seed=seed + i, initial_loads=start
        )
        out = sim.run(rounds, burn_in=burn)
        rate = out.metrics.average_regret
        bound = precise_sigmoid_rate(eps, gamma, demand.total)
        rows.append([eps, rate, bound, out.metrics.closeness(gs, demand.total)])
        rates.append(rate)
        theory.append(bound)
    # Algorithm Ant on the same colony, for the separation claim.
    sim = CountingSimulator(AntAlgorithm(gamma=gamma), demand, SigmoidFeedback(lam), seed=seed)
    ant_out = sim.run(rounds // 4, burn_in=rounds // 8)
    ant_c = ant_out.metrics.average_regret

    res = ExperimentResult("E5", run_e5_precise_sigmoid.title, scale)
    res.series["eps"] = np.array(eps_values)
    res.series["measured_rate"] = np.array(rates)
    res.series["theory_rate"] = np.array(theory)
    rows.append(
        ["(Algorithm Ant)", ant_c, float("nan"), ant_out.metrics.closeness(gs, demand.total)]
    )
    res.tables.append(
        format_table(
            ["eps", "measured R(t)/t", "theory eps*g*sum_d", "closeness"],
            rows,
            title=f"Precise Sigmoid, gamma={gamma}, gamma*={gs}, n={n}",
        )
    )
    for eps, rate, bound in zip(eps_values, rates, theory):
        res.claims.append(Claim.upper(f"rate at eps={eps}", rate, bound))
    # Linearity in eps: rate(eps)/eps roughly constant (within 2x).
    per_eps = np.array(rates) / np.array(eps_values)
    res.claims.append(
        Claim.shape(
            "rate scales linearly with eps (max/min of rate/eps <= 2)",
            float(per_eps.max() / per_eps.min()) <= 2.0,
            measured=float(per_eps.max() / per_eps.min()),
            bound=2.0,
        )
    )
    res.claims.append(
        Claim.shape(
            "Precise Sigmoid beats Algorithm Ant at every eps",
            bool(np.all(np.array(rates) < ant_c)),
        )
    )
    return res
