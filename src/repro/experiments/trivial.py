"""E10 / E11: the Appendix D dichotomy of the trivial algorithm.

Sequentially scheduled, the memoryless join-on-lack / leave-on-overload
rule converges and its steady regret scales like ``Theta(gamma* sum_d)``
(E10 verifies the linear scaling in ``gamma*``).  Synchronously
scheduled it herds: the load flips between ~0 and ~n forever (E11).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.oscillation import oscillation_stats
from repro.analysis.report import format_table
from repro.core.trivial import TrivialAlgorithm
from repro.env.critical import lambda_for_critical_value
from repro.env.demands import DemandVector
from repro.env.feedback import SigmoidFeedback
from repro.experiments.base import Claim, ExperimentResult, experiment
from repro.sim.engine import Simulator
from repro.sim.sequential import SequentialSimulator

__all__ = ["run_e10_trivial_sequential", "run_e11_trivial_synchronous"]


@experiment("E10", "Appendix D.1: trivial algorithm converges sequentially, regret ~ gamma* sum_d")
def run_e10_trivial_sequential(scale: str = "full", seed: int = 0) -> ExperimentResult:
    n = 2000 if scale == "quick" else 4000
    d = n // 4
    demand = DemandVector(np.array([d], dtype=np.int64), n=n, strict=False)
    rounds = (40 if scale == "quick" else 80) * n  # ~40-80 activations per ant
    burn = rounds // 2
    gamma_stars = [0.05, 0.1, 0.2]

    rows, rates = [], []
    for i, gs in enumerate(gamma_stars):
        lam = lambda_for_critical_value(demand, gamma_star=gs)
        sim = SequentialSimulator(
            TrivialAlgorithm(), demand, SigmoidFeedback(lam), seed=seed + i
        )
        out = sim.run(rounds, burn_in=burn)
        rate = out.metrics.average_regret
        rates.append(rate)
        rows.append([gs, rate, gs * demand.total, rate / (gs * demand.total)])

    res = ExperimentResult("E10", run_e10_trivial_sequential.title, scale)
    res.series["gamma_star"] = np.array(gamma_stars)
    res.series["regret_rate"] = np.array(rates)
    res.tables.append(
        format_table(
            ["gamma*", "measured R(t)/t", "gamma* * sum_d", "ratio"],
            rows,
            title=f"Trivial algorithm, sequential schedule, n={n}, d={d}",
        )
    )
    # Convergence: the steady regret is far below the synchronous Theta(n)
    # herding scale and scales linearly with gamma*.
    for gs, rate in zip(gamma_stars, rates):
        res.claims.append(
            Claim.upper(f"sequential regret rate well below n (gamma*={gs})", rate, 0.05 * n)
        )
    ratio = np.array(rates) / np.array(gamma_stars)
    res.claims.append(
        Claim.shape(
            "regret rate scales ~linearly with gamma* (max/min of rate/gamma* <= 3)",
            float(ratio.max() / ratio.min()) <= 3.0,
            measured=float(ratio.max() / ratio.min()),
            bound=3.0,
        )
    )
    res.claims.append(
        Claim.shape("regret increases with gamma*", bool(np.all(np.diff(rates) > 0)))
    )
    return res


@experiment("E11", "Appendix D.2: trivial algorithm oscillates at Theta(n) synchronously")
def run_e11_trivial_synchronous(scale: str = "full", seed: int = 0) -> ExperimentResult:
    n = 2000 if scale == "quick" else 4000
    d = n // 4
    demand = DemandVector(np.array([d], dtype=np.int64), n=n, strict=False)
    gs = 0.1
    lam = lambda_for_critical_value(demand, gamma_star=gs)
    rounds = 2000 if scale == "quick" else 5000

    sim = Simulator(TrivialAlgorithm(), demand, SigmoidFeedback(lam), seed=seed)
    out = sim.run(rounds, trace_stride=1)
    deficits = out.trace.deficits(demand.as_array())[:, 0].astype(float)
    stats = oscillation_stats(deficits, threshold=gs * d)
    # Steady-state window (skip the first few rounds).
    tail = deficits[10:]
    amplitude = float(np.abs(tail).max())
    crossings_per_100 = stats.crossings / (rounds / 100)

    res = ExperimentResult("E11", run_e11_trivial_synchronous.title, scale)
    res.series["deficit_first_40_rounds"] = deficits[:40]
    res.tables.append(
        format_table(
            ["quantity", "value"],
            [
                ["oscillation amplitude (max|deficit|)", amplitude],
                ["amplitude / n", amplitude / n],
                ["zero crossings per 100 rounds", crossings_per_100],
                ["fraction of rounds inside grey zone", stats.fraction_inside],
                ["mean |deficit|", stats.amplitude_mean],
            ],
            title=f"Trivial algorithm, synchronous schedule, n={n}, d={d}",
        )
    )
    res.claims += [
        Claim.lower("oscillation amplitude is Theta(n) (>= n/2)", amplitude, n / 2),
        Claim.lower("persistent oscillation (>= 25 crossings per 100 rounds)",
                    crossings_per_100, 25.0),
        Claim.upper("never settles near demand (fraction inside grey zone)",
                    stats.fraction_inside, 0.2),
    ]
    return res
