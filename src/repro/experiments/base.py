"""Experiment infrastructure: results, claims, registry.

An experiment regenerates one paper artifact (figure or theorem claim).
Its result carries:

* ``series`` — the numeric data that *is* the figure (printable as CSV),
* ``tables`` — formatted text tables,
* ``claims`` — measured-vs-theory comparisons with pass/fail verdicts,

so EXPERIMENTS.md rows can be produced mechanically and the benchmark
suite can assert the qualitative shape (every claim ``ok``).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["Claim", "ExperimentResult", "experiment", "get_experiment", "list_experiments"]


@dataclass(frozen=True)
class Claim:
    """One measured-vs-theory comparison.

    ``kind`` is ``"upper"`` (measured must not exceed bound), ``"lower"``
    (measured must be at least bound), or ``"shape"`` (a qualitative
    boolean established by the experiment code itself, e.g. "closeness is
    monotone in eps"; then ``measured``/``bound`` are informational).
    """

    label: str
    measured: float
    bound: float
    kind: str = "upper"
    ok: bool = True

    @staticmethod
    def upper(label: str, measured: float, bound: float) -> "Claim":
        return Claim(label, float(measured), float(bound), "upper", float(measured) <= float(bound))

    @staticmethod
    def lower(label: str, measured: float, bound: float) -> "Claim":
        return Claim(label, float(measured), float(bound), "lower", float(measured) >= float(bound))

    @staticmethod
    def shape(label: str, ok: bool, measured: float = 0.0, bound: float = 0.0) -> "Claim":
        return Claim(label, float(measured), float(bound), "shape", bool(ok))

    def render(self) -> str:
        mark = "PASS" if self.ok else "FAIL"
        if self.kind == "shape":
            return f"[{mark}] {self.label}"
        rel = f"{self.measured:.4g} vs {self.bound:.4g}"
        op = "<=" if self.kind == "upper" else ">="
        return f"[{mark}] {self.label}: measured {op} bound? {rel}"


@dataclass
class ExperimentResult:
    """Everything an experiment produced."""

    experiment_id: str
    title: str
    scale: str
    claims: list[Claim] = field(default_factory=list)
    tables: list[str] = field(default_factory=list)
    series: dict[str, np.ndarray] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)
    data: dict[str, Any] = field(default_factory=dict)

    @property
    def all_ok(self) -> bool:
        """True when every claim's verdict is PASS."""
        return all(c.ok for c in self.claims)

    def report(self) -> str:
        """Full plain-text report of the experiment."""
        lines = [f"=== {self.experiment_id}: {self.title} (scale={self.scale}) ==="]
        for t in self.tables:
            lines.append(t)
            lines.append("")
        for name, arr in self.series.items():
            arr = np.asarray(arr)
            preview = np.array2string(arr, precision=4, threshold=24)
            lines.append(f"series {name}: {preview}")
        if self.notes:
            lines.append("")
            lines.extend(f"note: {n}" for n in self.notes)
        lines.append("")
        lines.extend(c.render() for c in self.claims)
        lines.append(f"overall: {'PASS' if self.all_ok else 'FAIL'}")
        return "\n".join(lines)


_REGISTRY: dict[str, tuple[str, Callable[..., ExperimentResult]]] = {}


def experiment(experiment_id: str, title: str):
    """Decorator registering an experiment function under its id."""

    def wrap(fn: Callable[..., ExperimentResult]):
        if experiment_id in _REGISTRY:
            raise ConfigurationError(f"experiment {experiment_id} already registered")
        _REGISTRY[experiment_id] = (title, fn)
        fn.experiment_id = experiment_id
        fn.title = title
        return fn

    return wrap


def list_experiments() -> list[tuple[str, str]]:
    """Sorted (id, title) pairs of all registered experiments."""
    def sort_key(eid: str):
        digits = "".join(ch for ch in eid if ch.isdigit())
        return (int(digits) if digits else 0, eid)

    return [(eid, _REGISTRY[eid][0]) for eid in sorted(_REGISTRY, key=sort_key)]


def get_experiment(experiment_id: str) -> Callable[..., ExperimentResult]:
    """Look up an experiment function by id (e.g. ``"E3"``)."""
    try:
        return _REGISTRY[experiment_id][1]
    except KeyError:
        known = [eid for eid, _ in list_experiments()]
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None
