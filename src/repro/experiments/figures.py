"""E1 / E2: regenerate the paper's two figures.

Figure 1 is the feedback-probability diagram (sigmoid of the overload
with the grey zone marked); Figure 2 is the anatomy of one Algorithm-Ant
phase (two samples spaced by the temporary pause, and the stable zone).
Without matplotlib the *data series* of each figure is regenerated and
rendered as an ASCII plot.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import format_table
from repro.analysis.theory import stable_zone
from repro.core.ant import AntAlgorithm
from repro.env.critical import critical_value_sigmoid, lambda_for_critical_value
from repro.env.demands import uniform_demands
from repro.env.feedback import SigmoidFeedback
from repro.experiments.base import Claim, ExperimentResult, experiment
from repro.sim.engine import Simulator
from repro.types import assignment_from_loads
from repro.util.ascii_plot import line_plot

__all__ = ["run_e1_feedback_curve", "run_e2_phase_anatomy"]


@experiment("E1", "Figure 1: probability of OVERLOAD feedback vs overload, grey zone")
def run_e1_feedback_curve(scale: str = "full", seed: int = 0) -> ExperimentResult:
    """Regenerate Figure 1's curve and check its three defining properties.

    1. ``P[feedback=OVERLOAD] = 1/2`` at deficit 0;
    2. outside the grey zone the wrong feedback has probability <= p_fail;
    3. the curve is monotone in the overload.
    """
    n = 2000 if scale == "quick" else 10000
    demand = uniform_demands(n=n, k=1)
    d = demand.min_demand
    p_fail = 1e-6
    gamma_star = 0.05
    lam = lambda_for_critical_value(demand, gamma_star=gamma_star, p_fail=p_fail)
    model = SigmoidFeedback(lam)

    overloads = np.linspace(-2.0 * gamma_star * d, 2.0 * gamma_star * d, 81)
    deficits = -overloads
    p_overload = 1.0 - model.lack_probabilities(deficits)

    gs_check = critical_value_sigmoid(demand, lam, p_fail=p_fail)
    at_zero = float(1.0 - model.lack_probabilities(np.array([0.0]))[0])
    wrong_right_of_grey = float(model.lack_probabilities(np.array([-gamma_star * d]))[0])
    wrong_left_of_grey = float(1.0 - model.lack_probabilities(np.array([gamma_star * d]))[0])
    monotone = bool(np.all(np.diff(p_overload) >= -1e-12))

    res = ExperimentResult("E1", run_e1_feedback_curve.title, scale)
    res.series["overload"] = overloads
    res.series["p_overload_feedback"] = p_overload
    res.tables.append(
        line_plot(
            overloads,
            p_overload,
            title=(
                f"Figure 1: P[OVERLOAD feedback] vs overload "
                f"(grey zone +/- {gamma_star * d:.0f})"
            ),
            xlabel="overload (-Delta)",
            ylabel="P[overload]",
        )
    )
    res.tables.append(
        format_table(
            ["quantity", "value"],
            [
                ["lambda", lam],
                ["gamma* (recomputed)", gs_check],
                ["grey zone half-width", gamma_star * d],
                ["P[overload] at Delta=0", at_zero],
                ["P[wrong] at +grey boundary", wrong_left_of_grey],
                ["P[wrong] at -grey boundary", wrong_right_of_grey],
            ],
        )
    )
    res.claims += [
        Claim.upper("P[overload]=1/2 at deficit 0 (|p-1/2|)", abs(at_zero - 0.5), 1e-9),
        Claim.upper(
            "wrong-feedback prob at +boundary <= p_fail", wrong_left_of_grey, p_fail * 1.001
        ),
        Claim.upper(
            "wrong-feedback prob at -boundary <= p_fail", wrong_right_of_grey, p_fail * 1.001
        ),
        Claim.shape("curve monotone in overload", monotone),
        Claim.upper("gamma* inversion consistent", abs(gs_check - gamma_star), 1e-9),
    ]
    return res


@experiment("E2", "Figure 2: two-sample phase anatomy and the stable zone")
def run_e2_phase_anatomy(scale: str = "full", seed: int = 0) -> ExperimentResult:
    """Trace Algorithm-Ant phases around the stable zone.

    Checks the mechanics Figure 2 illustrates: the second sample sits a
    ``~c_s gamma`` fraction below the first, and once the phase-start
    load enters the stable zone ``[d(1+gamma), d(1+(0.9 c_s - 1) gamma)]``
    it stays there (no joins / no permanent leaves) for the rest of the
    run.
    """
    n = 8000 if scale != "quick" else 4000
    k = 1
    demand = uniform_demands(n=n, k=k)
    d = demand.min_demand
    gamma_star = 0.01
    gamma = 0.025
    lam = lambda_for_critical_value(demand, gamma_star=gamma_star)
    alg = AntAlgorithm(gamma=gamma)
    rounds = 3000 if scale != "quick" else 1200

    # Start above the stable zone so the trace shows the decay into it.
    start_loads = np.array([int(d * (1 + 12 * gamma))])
    sim = Simulator(
        alg,
        demand,
        SigmoidFeedback(lam),
        seed=seed,
        initial_assignment=assignment_from_loads(start_loads, n),
    )
    out = sim.run(rounds, trace_stride=1)
    loads = out.trace.loads[:, 0].astype(float)

    # Ratio of mid-phase (paused) load to phase-start load: odd rounds
    # (indices 0, 2, ...) carry the paused load; the phase-start load is
    # the preceding even round's post-decision load.
    phase_loads = loads[1::2]  # loads after decisions (even rounds)
    mid_loads = loads[2::2]  # paused loads of the *next* phase (odd rounds >= 3)
    m = min(phase_loads.size - 1, mid_loads.size)
    ratios = mid_loads[:m] / phase_loads[:m]
    expected_ratio = 1.0 - alg.pause_probability

    lo, hi = stable_zone(d, gamma)
    # The no-join / no-leave *resting band* implied by Claim 4.2's proof:
    # joins stop once the first sample reliably reads OVERLOAD
    # (W >= d(1+gamma*)) and leaves stop once the thinned second sample
    # reliably reads LACK (W(1-1.1 c_s gamma) <= d(1-gamma*)).  The
    # paper's stable zone [d(1+g), d(1+(0.9c_s-1)g)] sits inside it.
    rest_lo = d * (1.0 + gamma_star)
    rest_hi = d * (1.0 - gamma_star) / (1.0 - 1.1 * alg.constants.c_s * gamma)
    phase_start_loads = loads[1::2]
    inside = (phase_start_loads >= rest_lo - 0.5) & (phase_start_loads <= rest_hi + 0.5)
    entered = int(np.argmax(inside)) if inside.any() else -1
    residence = float(inside[entered:].mean()) if entered >= 0 else 0.0

    res = ExperimentResult("E2", run_e2_phase_anatomy.title, scale)
    res.series["phase_start_loads"] = phase_start_loads[: min(400, phase_start_loads.size)]
    res.series["sample_spacing_ratio"] = ratios[: min(400, ratios.size)]
    res.tables.append(
        line_plot(
            np.arange(min(300, phase_start_loads.size)),
            phase_start_loads[: min(300, phase_start_loads.size)],
            title=(
                f"Figure 2: phase-start load decaying into stable zone "
                f"[{lo:.0f}, {hi:.0f}] (d={d})"
            ),
            xlabel="phase",
            ylabel="load",
        )
    )
    res.notes.append(
        f"paper stable zone [{lo:.0f}, {hi:.0f}]; resting band [{rest_lo:.0f}, {rest_hi:.0f}]; "
        f"entered at phase {entered}; residence fraction afterwards {residence:.3f}"
    )
    res.claims += [
        Claim.upper(
            "second sample thinned by ~c_s*gamma (|mean ratio - (1-c_s g)|)",
            abs(float(ratios.mean()) - expected_ratio),
            0.01,
        ),
        Claim.shape("phase-start load enters the resting band", entered >= 0),
        Claim.lower("residence fraction in resting band after entry", residence, 0.95),
    ]
    res.data["stable_zone"] = (lo, hi)
    res.data["resting_band"] = (rest_lo, rest_hi)
    return res
