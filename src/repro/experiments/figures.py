"""E1 / E2 / E16: figure-level experiments.

E1 is the feedback-probability diagram (sigmoid of the overload with the
grey zone marked); E2 is the anatomy of one Algorithm-Ant phase (two
samples spaced by the temporary pause, and the stable zone).  E16 is the
heterogeneity figure the demand-spectrum generators opened: regret /
closeness as the demand spectrum skews (power-law and log-normal, with
per-task ``lambda`` calibrated to an equal relative grey zone), rendered
*from stored sweep records* so re-rendering the figure is free.  Without
matplotlib the *data series* of each figure is regenerated and rendered
as an ASCII plot.
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

from repro.analysis.report import format_table
from repro.analysis.theory import stable_zone
from repro.core.ant import AntAlgorithm
from repro.env.critical import critical_value_sigmoid, lambda_for_critical_value
from repro.env.demands import lognormal_demands, powerlaw_demands, uniform_demands
from repro.env.feedback import SigmoidFeedback
from repro.experiments.base import Claim, ExperimentResult, experiment
from repro.sim.engine import Simulator
from repro.types import assignment_from_loads
from repro.util.ascii_plot import line_plot

__all__ = ["run_e1_feedback_curve", "run_e2_phase_anatomy", "run_e16_spectrum_skew"]


@experiment("E1", "Figure 1: probability of OVERLOAD feedback vs overload, grey zone")
def run_e1_feedback_curve(scale: str = "full", seed: int = 0) -> ExperimentResult:
    """Regenerate Figure 1's curve and check its three defining properties.

    1. ``P[feedback=OVERLOAD] = 1/2`` at deficit 0;
    2. outside the grey zone the wrong feedback has probability <= p_fail;
    3. the curve is monotone in the overload.
    """
    n = 2000 if scale == "quick" else 10000
    demand = uniform_demands(n=n, k=1)
    d = demand.min_demand
    p_fail = 1e-6
    gamma_star = 0.05
    lam = lambda_for_critical_value(demand, gamma_star=gamma_star, p_fail=p_fail)
    model = SigmoidFeedback(lam)

    overloads = np.linspace(-2.0 * gamma_star * d, 2.0 * gamma_star * d, 81)
    deficits = -overloads
    p_overload = 1.0 - model.lack_probabilities(deficits)

    gs_check = critical_value_sigmoid(demand, lam, p_fail=p_fail)
    at_zero = float(1.0 - model.lack_probabilities(np.array([0.0]))[0])
    wrong_right_of_grey = float(model.lack_probabilities(np.array([-gamma_star * d]))[0])
    wrong_left_of_grey = float(1.0 - model.lack_probabilities(np.array([gamma_star * d]))[0])
    monotone = bool(np.all(np.diff(p_overload) >= -1e-12))

    res = ExperimentResult("E1", run_e1_feedback_curve.title, scale)
    res.series["overload"] = overloads
    res.series["p_overload_feedback"] = p_overload
    res.tables.append(
        line_plot(
            overloads,
            p_overload,
            title=(
                f"Figure 1: P[OVERLOAD feedback] vs overload "
                f"(grey zone +/- {gamma_star * d:.0f})"
            ),
            xlabel="overload (-Delta)",
            ylabel="P[overload]",
        )
    )
    res.tables.append(
        format_table(
            ["quantity", "value"],
            [
                ["lambda", lam],
                ["gamma* (recomputed)", gs_check],
                ["grey zone half-width", gamma_star * d],
                ["P[overload] at Delta=0", at_zero],
                ["P[wrong] at +grey boundary", wrong_left_of_grey],
                ["P[wrong] at -grey boundary", wrong_right_of_grey],
            ],
        )
    )
    res.claims += [
        Claim.upper("P[overload]=1/2 at deficit 0 (|p-1/2|)", abs(at_zero - 0.5), 1e-9),
        Claim.upper(
            "wrong-feedback prob at +boundary <= p_fail", wrong_left_of_grey, p_fail * 1.001
        ),
        Claim.upper(
            "wrong-feedback prob at -boundary <= p_fail", wrong_right_of_grey, p_fail * 1.001
        ),
        Claim.shape("curve monotone in overload", monotone),
        Claim.upper("gamma* inversion consistent", abs(gs_check - gamma_star), 1e-9),
    ]
    return res


@experiment("E2", "Figure 2: two-sample phase anatomy and the stable zone")
def run_e2_phase_anatomy(scale: str = "full", seed: int = 0) -> ExperimentResult:
    """Trace Algorithm-Ant phases around the stable zone.

    Checks the mechanics Figure 2 illustrates: the second sample sits a
    ``~c_s gamma`` fraction below the first, and once the phase-start
    load enters the stable zone ``[d(1+gamma), d(1+(0.9 c_s - 1) gamma)]``
    it stays there (no joins / no permanent leaves) for the rest of the
    run.
    """
    n = 8000 if scale != "quick" else 4000
    k = 1
    demand = uniform_demands(n=n, k=k)
    d = demand.min_demand
    gamma_star = 0.01
    gamma = 0.025
    lam = lambda_for_critical_value(demand, gamma_star=gamma_star)
    alg = AntAlgorithm(gamma=gamma)
    rounds = 3000 if scale != "quick" else 1200

    # Start above the stable zone so the trace shows the decay into it.
    start_loads = np.array([int(d * (1 + 12 * gamma))])
    sim = Simulator(
        alg,
        demand,
        SigmoidFeedback(lam),
        seed=seed,
        initial_assignment=assignment_from_loads(start_loads, n),
    )
    out = sim.run(rounds, trace_stride=1)
    loads = out.trace.loads[:, 0].astype(float)

    # Ratio of mid-phase (paused) load to phase-start load: odd rounds
    # (indices 0, 2, ...) carry the paused load; the phase-start load is
    # the preceding even round's post-decision load.
    phase_loads = loads[1::2]  # loads after decisions (even rounds)
    mid_loads = loads[2::2]  # paused loads of the *next* phase (odd rounds >= 3)
    m = min(phase_loads.size - 1, mid_loads.size)
    ratios = mid_loads[:m] / phase_loads[:m]
    expected_ratio = 1.0 - alg.pause_probability

    lo, hi = stable_zone(d, gamma)
    # The no-join / no-leave *resting band* implied by Claim 4.2's proof:
    # joins stop once the first sample reliably reads OVERLOAD
    # (W >= d(1+gamma*)) and leaves stop once the thinned second sample
    # reliably reads LACK (W(1-1.1 c_s gamma) <= d(1-gamma*)).  The
    # paper's stable zone [d(1+g), d(1+(0.9c_s-1)g)] sits inside it.
    rest_lo = d * (1.0 + gamma_star)
    rest_hi = d * (1.0 - gamma_star) / (1.0 - 1.1 * alg.constants.c_s * gamma)
    phase_start_loads = loads[1::2]
    inside = (phase_start_loads >= rest_lo - 0.5) & (phase_start_loads <= rest_hi + 0.5)
    entered = int(np.argmax(inside)) if inside.any() else -1
    residence = float(inside[entered:].mean()) if entered >= 0 else 0.0

    res = ExperimentResult("E2", run_e2_phase_anatomy.title, scale)
    res.series["phase_start_loads"] = phase_start_loads[: min(400, phase_start_loads.size)]
    res.series["sample_spacing_ratio"] = ratios[: min(400, ratios.size)]
    res.tables.append(
        line_plot(
            np.arange(min(300, phase_start_loads.size)),
            phase_start_loads[: min(300, phase_start_loads.size)],
            title=(
                f"Figure 2: phase-start load decaying into stable zone "
                f"[{lo:.0f}, {hi:.0f}] (d={d})"
            ),
            xlabel="phase",
            ylabel="load",
        )
    )
    res.notes.append(
        f"paper stable zone [{lo:.0f}, {hi:.0f}]; resting band [{rest_lo:.0f}, {rest_hi:.0f}]; "
        f"entered at phase {entered}; residence fraction afterwards {residence:.3f}"
    )
    res.claims += [
        Claim.upper(
            "second sample thinned by ~c_s*gamma (|mean ratio - (1-c_s g)|)",
            abs(float(ratios.mean()) - expected_ratio),
            0.01,
        ),
        Claim.shape("phase-start load enters the resting band", entered >= 0),
        Claim.lower("residence fraction in resting band after entry", residence, 0.95),
    ]
    res.data["stable_zone"] = (lo, hi)
    res.data["resting_band"] = (rest_lo, rest_hi)
    return res


def _spectrum_spec(family, skew, *, n, k, rounds, burn_in, seed, gamma_star):
    """A counting scenario on a skewed demand spectrum with per-task
    ``lambda`` calibrated to an equal *relative* grey zone.

    ``lambda_j * gamma* * d(j)`` is held constant across tasks (the
    scalar calibration solves it for ``d_min``), so every task — heavy
    head or light tail — has the same wrong-feedback probability at its
    own grey-zone boundary.  A scalar ``lambda`` would instead make
    heavy tasks' feedback nearly exact and light tasks' nearly random,
    confounding the skew axis with a noise axis.
    """
    from repro.scenario import ScenarioSpec

    if family == "powerlaw":
        skew_param, demand = "alpha", powerlaw_demands(n=n, k=k, alpha=skew)
    else:
        skew_param, demand = "sigma", lognormal_demands(n=n, k=k, sigma=skew)
    d = demand.as_array().astype(np.float64)
    lam_min = lambda_for_critical_value(demand, gamma_star=gamma_star)
    lam = [float(x) for x in lam_min * (d.min() / d)]
    return ScenarioSpec(
        algorithm={"name": "ant", "params": {"gamma": 0.025}},
        demand={"name": family, "params": {"n": n, "k": k, skew_param: skew}},
        feedback={"name": "sigmoid", "params": {"lam": lam}},
        engine={"name": "counting"},
        rounds=rounds,
        seed=seed,
        run_params={"burn_in": burn_in},
        gamma_star=gamma_star,
        label=f"{family}-skew-{skew}",
    ), f"demand.{skew_param}"


@experiment(
    "E16",
    "Regret vs demand-spectrum skew (powerlaw/lognormal, per-task lambda), "
    "rendered from stored sweep records",
)
def run_e16_spectrum_skew(scale: str = "full", seed: int = 0) -> ExperimentResult:
    """The figure the ROADMAP flagged as "nothing renders yet".

    For each spectrum family the skew parameter is swept through
    store-backed ``sweep_scenario`` calls: every point is committed to a
    :class:`~repro.store.ResultStore` (rooted at ``$REPRO_STORE`` when
    set, so re-invocations across sessions are free; a temp directory
    otherwise) and the whole figure is then *re-rendered* from the store
    — asserting that the second pass computes nothing and changes
    nothing.  The join kernels behind the points share one persistent
    pi cache living in the same store.
    """
    quick = scale == "quick"
    k = 32 if quick else 64
    n = 100 * k
    rounds = 600 if quick else 2000
    burn_in = rounds // 3
    trials = 2 if quick else 4
    gamma_star = 0.01
    skews = {
        "powerlaw": [0.0, 0.6, 1.2],
        "lognormal": [0.25, 0.75, 1.25],
    }

    from repro.scenario import sweep_scenario
    from repro.store import ResultStore

    def render(store):
        """One full figure pass; returns (closeness rows, resumed flags)."""
        rows: dict[str, list[float]] = {}
        regret_rows: dict[str, list[float]] = {}
        resumed: list[bool] = []
        for family, family_skews in skews.items():
            rows[family] = []
            regret_rows[family] = []
            for skew in family_skews:
                spec, parameter = _spectrum_spec(
                    family,
                    skew,
                    n=n,
                    k=k,
                    rounds=rounds,
                    burn_in=burn_in,
                    seed=seed,
                    gamma_star=gamma_star,
                )
                out = sweep_scenario(
                    spec,
                    parameter,
                    [skew],
                    trials=trials,
                    store=store,
                    shared_pi_cache=True,
                )
                rows[family].append(out.summaries[0].mean_closeness)
                regret_rows[family].append(out.summaries[0].mean_average_regret)
                resumed.extend(out.resumed or [])
        return rows, regret_rows, resumed

    env_root = os.environ.get("REPRO_STORE")
    with tempfile.TemporaryDirectory() as tmp:
        store = ResultStore(env_root if env_root else tmp)
        first, regrets, _ = render(store)
        second, _, second_resumed = render(store)

    res = ExperimentResult("E16", run_e16_spectrum_skew.title, scale)
    n_points = sum(len(v) for v in skews.values())
    max_delta = 0.0
    table_rows = []
    for family, family_skews in skews.items():
        res.series[f"{family}_skew"] = np.array(family_skews)
        res.series[f"{family}_closeness"] = np.array(first[family])
        res.series[f"{family}_average_regret"] = np.array(regrets[family])
        max_delta = max(
            max_delta,
            float(np.max(np.abs(np.array(first[family]) - np.array(second[family])))),
        )
        for skew, c, r in zip(family_skews, first[family], regrets[family]):
            table_rows.append([family, skew, r, c])
        res.tables.append(
            line_plot(
                np.array(family_skews),
                np.array(first[family]),
                title=f"E16: closeness vs {family} skew (k={k}, per-task lambda)",
                xlabel="skew",
                ylabel="closeness",
            )
        )
    res.tables.append(
        format_table(["spectrum", "skew", "R(t)/t", "closeness"], table_rows)
    )
    res.notes.append(
        f"store root: {'$REPRO_STORE=' + env_root if env_root else 'temp dir'}; "
        f"{n_points} points per pass, second pass served {sum(second_resumed)} "
        "from records"
    )

    res.claims += [
        Claim.shape(
            "every spectrum point rendered", len(second_resumed) == n_points
        ),
        # The figure's shape: a skewer spectrum (lighter tail tasks, whose
        # grey zones shrink below one ant) costs strictly more regret.
        Claim.shape(
            "closeness monotone in powerlaw skew",
            bool(np.all(np.diff(first["powerlaw"]) >= 0.0)),
        ),
        Claim.shape(
            "closeness monotone in lognormal skew",
            bool(np.all(np.diff(first["lognormal"]) >= 0.0)),
        ),
        Claim.shape(
            "re-render served entirely from stored records",
            len(second_resumed) == n_points and all(second_resumed),
        ),
        Claim.upper("re-render is bit-identical (max |delta closeness|)", max_delta, 0.0),
    ]
    return res
