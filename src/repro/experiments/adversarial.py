"""E9: Theorem 3.6 — Algorithm Precise Adversarial.

Under adversarial noise, Precise Adversarial achieves ``(1+eps)``-close
allocations (vs the Theorem 3.5 lower bound of 1), and switches tasks far
less often than Algorithm Ant — both measured here, against several grey
-zone adversary strategies.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import format_table
from repro.analysis.theory import precise_adversarial_rate
from repro.core.ant import AntAlgorithm
from repro.core.precise_adversarial import PreciseAdversarialAlgorithm
from repro.env.adversary import make_adversary
from repro.env.demands import uniform_demands
from repro.env.feedback import AdversarialFeedback
from repro.experiments.base import Claim, ExperimentResult, experiment
from repro.sim.engine import Simulator
from repro.types import assignment_from_loads

__all__ = ["run_e9_precise_adversarial"]


@experiment("E9", "Theorem 3.6: Precise Adversarial is (1+eps)-close with few switches")
def run_e9_precise_adversarial(scale: str = "full", seed: int = 0) -> ExperimentResult:
    n = 8000 if scale != "quick" else 4000
    demand = uniform_demands(n=n, k=4)
    gs = 0.01  # gamma_ad = the adversarial critical value
    gamma = 0.025
    eps = 0.5
    rounds = 30000 if scale != "quick" else 8000
    burn = rounds // 2
    strategies = ["random", "push_away"] if scale == "quick" else [
        "random", "push_away", "always_lack", "correct",
    ]

    pa = PreciseAdversarialAlgorithm(gamma=gamma, eps=eps)
    ant = AntAlgorithm(gamma=gamma)
    start = assignment_from_loads(
        np.round(demand.as_array() * (1.0 + 2.0 * gamma)).astype(np.int64), n
    )
    bound_rate = precise_adversarial_rate(eps, gamma, demand.total)
    bound_closeness = bound_rate / (gs * demand.total)

    rows, pa_closenesses, switch_ratios = [], [], []
    for i, strat in enumerate(strategies):
        out_pa = Simulator(
            pa,
            demand,
            AdversarialFeedback(gamma_ad=gs, strategy=make_adversary(strat)),
            seed=seed + i,
            initial_assignment=start,
        ).run(rounds, burn_in=burn)
        out_ant = Simulator(
            ant,
            demand,
            AdversarialFeedback(gamma_ad=gs, strategy=make_adversary(strat)),
            seed=seed + 100 + i,
            initial_assignment=start,
        ).run(rounds // 2, burn_in=rounds // 4)
        c_pa = out_pa.metrics.closeness(gs, demand.total)
        c_ant = out_ant.metrics.closeness(gs, demand.total)
        s_pa = out_pa.metrics.switches_per_round
        s_ant = out_ant.metrics.switches_per_round
        pa_closenesses.append(c_pa)
        switch_ratios.append(s_pa / max(s_ant, 1e-12))
        rows.append([strat, c_pa, c_ant, s_pa, s_ant])

    res = ExperimentResult("E9", run_e9_precise_adversarial.title, scale)
    res.tables.append(
        format_table(
            [
                "adversary",
                "PA closeness",
                "Ant closeness",
                "PA switches/round",
                "Ant switches/round",
            ],
            rows,
            title=f"Precise Adversarial (eps={eps}) vs Algorithm Ant, gamma_ad={gs}, gamma={gamma}",
        )
    )
    for strat, c in zip(strategies, pa_closenesses):
        res.claims.append(
            Claim.upper(f"PA closeness vs (1+eps)gamma/gamma* bound ({strat})", c, bound_closeness)
        )
    res.claims.append(
        Claim.shape(
            "PA switches an order of magnitude less than Ant (all adversaries)",
            bool(np.all(np.array(switch_ratios) < 0.1)),
            measured=float(np.max(switch_ratios)),
            bound=0.1,
        )
    )
    res.series["pa_closeness"] = np.array(pa_closenesses)
    res.series["switch_ratio_pa_over_ant"] = np.array(switch_ratios)
    return res
