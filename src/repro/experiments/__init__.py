"""Experiment harness: regenerates every figure / theorem claim.

One function per experiment (E1-E16, see DESIGN.md for the index); each
returns an :class:`~repro.experiments.base.ExperimentResult` whose
``report()`` prints the regenerated series/tables and the
measured-vs-theory verdicts.  ``python -m repro.experiments run E3``
runs one from the command line; the ``benchmarks/`` suite runs quick
scales of all of them under pytest-benchmark.
"""

from repro.experiments.base import Claim, ExperimentResult, get_experiment, list_experiments
from repro.experiments import (  # noqa: F401 (registration side effects)
    adversarial,
    bounds,
    closeness,
    extensions,
    figures,
    trivial,
)

__all__ = ["Claim", "ExperimentResult", "get_experiment", "list_experiments"]
