"""Command-line entry point: ``python -m repro.experiments`` / ``repro-experiments``.

Usage::

    repro-experiments list
    repro-experiments run E3 [--scale quick|full] [--seed N]
    repro-experiments run all [--scale quick]
    repro-experiments scenario run <file.json> [--rounds N] [--trials T]
                                               [--parallel P] [--seed S]
    repro-experiments scenario show <file.json>
    repro-experiments scenario components
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.experiments.base import get_experiment, list_experiments


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's figures and theorem-level claims.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    runp = sub.add_parser("run", help="run one experiment (or 'all')")
    runp.add_argument("experiment", help="experiment id, e.g. E3, or 'all'")
    runp.add_argument("--scale", choices=("quick", "full"), default="full")
    runp.add_argument("--seed", type=int, default=0)

    scen = sub.add_parser("scenario", help="declarative scenario specs (JSON)")
    ssub = scen.add_subparsers(dest="scenario_command", required=True)
    srun = ssub.add_parser("run", help="run a scenario spec from a JSON file")
    srun.add_argument("file", help="path to a ScenarioSpec JSON file")
    srun.add_argument("--rounds", type=int, default=None, help="override spec.rounds")
    srun.add_argument("--trials", type=int, default=1, help="independent trials")
    srun.add_argument("--parallel", type=int, default=0, help="worker processes")
    srun.add_argument("--seed", type=int, default=None, help="override spec.seed")
    sshow = ssub.add_parser("show", help="validate a spec file and print it normalized")
    sshow.add_argument("file", help="path to a ScenarioSpec JSON file")
    ssub.add_parser("components", help="list registered component names")
    return parser


def _load_spec(path: str):
    from repro.scenario import ScenarioSpec

    return ScenarioSpec.from_json(Path(path).read_text(encoding="utf-8"))


def _scenario_main(args: argparse.Namespace) -> int:
    from repro.core.registry import available_algorithms
    from repro.env.registry import (
        available_demands,
        available_feedbacks,
        available_populations,
    )
    from repro.scenario import available_engines, run_scenario
    from repro.sim.runner import TrialSummary

    if args.scenario_command == "components":
        for kind, names in (
            ("algorithms", available_algorithms()),
            ("feedbacks", available_feedbacks()),
            ("demands", available_demands()),
            ("populations", available_populations()),
            ("engines", available_engines()),
        ):
            print(f"{kind:>12}: {', '.join(names)}")
        return 0

    spec = _load_spec(args.file)
    if args.scenario_command == "show":
        print(spec.to_json())
        return 0

    t0 = time.perf_counter()
    out = run_scenario(
        spec,
        rounds=args.rounds,
        trials=args.trials,
        parallel=args.parallel,
        seed=args.seed,
    )
    dt = time.perf_counter() - t0
    if isinstance(out, TrialSummary):
        print(out.describe())
    else:
        m = out.metrics
        line = (
            f"{spec.describe()}: R(t)/t = {m.average_regret:.2f}"
            f"  max|deficit| = {m.max_abs_deficit:.1f}"
            f"  switches/round = {m.switches_per_round:.2f}"
        )
        if spec.gamma_star is not None:
            closeness = m.closeness(spec.gamma_star, spec.initial_demand().total)
            line += f"  closeness = {closeness:.3f}"
        print(line)
        print(f"final loads = {m.final_loads.astype(int)}")
    print(f"(scenario took {dt:.1f}s)")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "scenario":
        return _scenario_main(args)
    if args.command == "list":
        for eid, title in list_experiments():
            print(f"{eid:>4}  {title}")
        return 0

    ids = (
        [eid for eid, _ in list_experiments()]
        if args.experiment.lower() == "all"
        else [args.experiment]
    )
    overall_ok = True
    for eid in ids:
        fn = get_experiment(eid)
        t0 = time.perf_counter()
        result = fn(scale=args.scale, seed=args.seed)
        dt = time.perf_counter() - t0
        print(result.report())
        print(f"({eid} took {dt:.1f}s)\n")
        overall_ok &= result.all_ok
    return 0 if overall_ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
