"""Command-line entry point: ``python -m repro.experiments`` / ``repro-experiments``.

Usage::

    repro-experiments list
    repro-experiments run E3 [--scale quick|full] [--seed N]
    repro-experiments run all [--scale quick]
    repro-experiments scenario run <file.json> [--rounds N] [--trials T]
                                               [--parallel P] [--batch B] [--seed S]
    repro-experiments scenario sweep <file.json> --param algorithm.gamma
        --values 0.02,0.03 [--trials T] [--rounds N] [--parallel P]
        [--store DIR] [--resume] [--shared-pi-cache]
        [--max-points N] [--out results.json]
    repro-experiments scenario show <file.json>
    repro-experiments scenario components
    repro-experiments store ls <dir> [--json]
    repro-experiments store info <dir>
    repro-experiments store gc <dir> [--max-age SECONDS] [--grace SECONDS]
    repro-experiments sched run <file.json> --store DIR
        --axis algorithm.gamma=0.01,0.02 [--axis feedback.p_fail=0.05,0.1]
        [--trials T] [--rounds N] [--workers W] [--ttl S] [--poll S]
        [--shared-pi-cache] [--init-only] [--json]
    repro-experiments sched work <dir> [--grid DIGEST] [--ttl S] [--poll S]
        [--max-points N] [--shared-pi-cache] [--worker-id ID]
    repro-experiments sched status <dir> [--grid DIGEST] [--ttl S] [--json]
    repro-experiments serve <dir> [--workers N] [--port P] [--host H]
        [--ttl S] [--max-pending N] [--shared-pi-cache]
    repro-experiments obs report <trace.jsonl> [--top N] [--json]
    repro-experiments lint <paths...> [--disable IDS] [--no-registry]
        [--json] [--list-rules]

``scenario run/sweep`` and ``sched run/work`` accept ``--trace FILE``:
spans and events (engine runs, join-kernel dispatches, cache stats,
scheduler claims, commits) are appended to the file as one canonical
JSON line each; ``obs report`` aggregates such a file into top spans,
kernel time per method, and cache hit ratios.  Tracing never changes
records or digests — it is byte-transparent to the store.

``scenario sweep --store DIR`` commits every completed point to the
store; adding ``--resume`` serves already-committed points from disk
(bit-identical to recomputing them) and executes only the missing ones.
``--max-points N`` deterministically simulates an interrupted sweep: the
process stops with exit status 3 once N new points were computed — the
committed prefix stays resumable.  ``--out`` writes the aggregate series
as canonical JSON, byte-comparable across resumed and fresh runs.

``sched`` drives the distributed grid scheduler (:mod:`repro.sched`):
``sched run`` initialises a multi-axis grid in the store and drains it
with N local workers (live frontier counters on stderr); ``sched work``
attaches one worker to an existing grid — run it from several processes
or machines sharing the store directory and they cooperate via lease
files; ``sched status`` reports the frontier (``--json`` for the
canonical machine-readable form the CI smokes compare).

``serve`` starts the scenario service (:mod:`repro.serve`) over a
result store: ``POST /scenarios`` dedups requests by sweep-point
digest (committed records answer immediately, new work is enqueued
behind a worker pool), ``GET /results/<digest>`` polls/reads, and
``GET /status`` reports the queue and dedup counters.  Blocks until
interrupted.
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import nullcontext
from pathlib import Path
from typing import Any, ContextManager

from repro.experiments.base import get_experiment, list_experiments
from repro.obs import monotonic as obs_monotonic

#: Exit status of a sweep stopped by ``--max-points`` (the interrupted-
#: sweep smoke asserts it; distinct from argparse's 2 and errors' 1).
SWEEP_INTERRUPTED_EXIT = 3


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's figures and theorem-level claims.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    runp = sub.add_parser("run", help="run one experiment (or 'all')")
    runp.add_argument("experiment", help="experiment id, e.g. E3, or 'all'")
    runp.add_argument("--scale", choices=("quick", "full"), default="full")
    runp.add_argument("--seed", type=int, default=0)

    scen = sub.add_parser("scenario", help="declarative scenario specs (JSON)")
    ssub = scen.add_subparsers(dest="scenario_command", required=True)
    srun = ssub.add_parser("run", help="run a scenario spec from a JSON file")
    srun.add_argument("file", help="path to a ScenarioSpec JSON file")
    srun.add_argument("--rounds", type=int, default=None, help="override spec.rounds")
    srun.add_argument("--trials", type=int, default=1, help="independent trials")
    srun.add_argument("--parallel", type=int, default=0, help="worker processes")
    srun.add_argument(
        "--batch",
        type=int,
        default=None,
        help="batched-engine lanes per chunk (counting engines; 0 forces serial, "
        "default defers to the spec)",
    )
    srun.add_argument("--seed", type=int, default=None, help="override spec.seed")
    srun.add_argument(
        "--trace", default=None, metavar="FILE", help="append obs trace spans to this JSONL file"
    )
    ssweep = ssub.add_parser(
        "sweep", help="sweep one spec parameter (store-backed and resumable)"
    )
    ssweep.add_argument("file", help="path to a ScenarioSpec JSON file")
    ssweep.add_argument(
        "--param", required=True, help="dotted component param, e.g. algorithm.gamma"
    )
    ssweep.add_argument(
        "--values",
        required=True,
        help="comma-separated values (each parsed as JSON, else kept as string)",
    )
    ssweep.add_argument("--trials", type=int, default=5, help="trials per point")
    ssweep.add_argument("--rounds", type=int, default=None, help="override spec.rounds")
    ssweep.add_argument("--parallel", type=int, default=0, help="worker processes")
    ssweep.add_argument(
        "--store", default=None, help="result-store root; completed points are committed here"
    )
    ssweep.add_argument(
        "--resume",
        action="store_true",
        help="serve points already committed to --store instead of recomputing",
    )
    ssweep.add_argument(
        "--shared-pi-cache",
        action="store_true",
        help="share join-kernel work across trials/points (persistent with --store)",
    )
    ssweep.add_argument(
        "--max-points",
        type=int,
        default=None,
        help=f"stop with exit status {SWEEP_INTERRUPTED_EXIT} after computing N new points",
    )
    ssweep.add_argument(
        "--out", default=None, help="write the aggregate series as canonical JSON"
    )
    ssweep.add_argument(
        "--trace", default=None, metavar="FILE", help="append obs trace spans to this JSONL file"
    )
    sshow = ssub.add_parser("show", help="validate a spec file and print it normalized")
    sshow.add_argument("file", help="path to a ScenarioSpec JSON file")
    ssub.add_parser("components", help="list registered component names")

    storep = sub.add_parser("store", help="inspect / maintain a result store")
    stsub = storep.add_subparsers(dest="store_command", required=True)
    sls = stsub.add_parser("ls", help="list committed records")
    sls.add_argument("root", help="store root directory")
    sls.add_argument(
        "--json",
        action="store_true",
        help="canonical JSON (byte-stable ordering, no timestamps)",
    )
    sinfo = stsub.add_parser("info", help="record/cache counts and sizes")
    sinfo.add_argument("root", help="store root directory")
    sgc = stsub.add_parser("gc", help="sweep temp files, orphans, broken records")
    sgc.add_argument("root", help="store root directory")
    sgc.add_argument(
        "--max-age",
        type=float,
        default=None,
        metavar="SECONDS",
        help="also evict pi-cache entries and break lease files older than this",
    )
    sgc.add_argument(
        "--grace",
        type=float,
        default=None,
        metavar="SECONDS",
        help="age below which temp files / orphan payloads are presumed in-flight "
        "(default 3600; pass 0 when no writer can be alive)",
    )

    schedp = sub.add_parser("sched", help="distributed grid scheduler (repro.sched)")
    scsub = schedp.add_subparsers(dest="sched_command", required=True)
    screate = scsub.add_parser("run", help="initialise a grid and drain it with N workers")
    screate.add_argument("file", help="path to the base ScenarioSpec JSON file")
    screate.add_argument("--store", required=True, help="result-store root for the grid")
    screate.add_argument(
        "--axis",
        action="append",
        required=True,
        metavar="PARAM=V1,V2,...",
        help="one grid axis (repeatable); values parse like scenario sweep --values",
    )
    screate.add_argument("--trials", type=int, default=5, help="trials per grid point")
    screate.add_argument("--rounds", type=int, default=None, help="override spec.rounds")
    screate.add_argument(
        "--workers", type=int, default=0, help="local worker processes (0 = in-process)"
    )
    screate.add_argument("--ttl", type=float, default=60.0, help="lease TTL seconds")
    screate.add_argument("--poll", type=float, default=0.2, help="idle poll seconds")
    screate.add_argument(
        "--shared-pi-cache",
        action="store_true",
        help="share join-kernel work across points (disk tier inside the store)",
    )
    screate.add_argument(
        "--init-only",
        action="store_true",
        help="persist the grid manifest and exit without running any point",
    )
    screate.add_argument("--json", action="store_true", help="final status as canonical JSON")
    screate.add_argument(
        "--trace", default=None, metavar="FILE", help="append obs trace spans to this JSONL file"
    )
    swork = scsub.add_parser("work", help="attach one worker to an existing grid")
    swork.add_argument("root", help="store root directory holding the grid")
    swork.add_argument("--grid", default=None, help="grid digest (optional if unambiguous)")
    swork.add_argument("--ttl", type=float, default=60.0, help="lease TTL seconds")
    swork.add_argument("--poll", type=float, default=0.2, help="idle poll seconds")
    swork.add_argument(
        "--max-points", type=int, default=None, help="exit after computing N points"
    )
    swork.add_argument(
        "--shared-pi-cache",
        action="store_true",
        help="share join-kernel work across points (disk tier inside the store)",
    )
    swork.add_argument("--worker-id", default=None, help="label recorded in lease files")
    swork.add_argument(
        "--trace", default=None, metavar="FILE", help="append obs trace spans to this JSONL file"
    )
    sstatus = scsub.add_parser("status", help="frontier counters of a grid")
    sstatus.add_argument("root", help="store root directory holding the grid")
    sstatus.add_argument("--grid", default=None, help="grid digest (optional if unambiguous)")
    sstatus.add_argument("--ttl", type=float, default=60.0, help="lease freshness TTL")
    sstatus.add_argument("--json", action="store_true", help="canonical JSON output")
    servep = sub.add_parser("serve", help="scenario service over a result store (repro.serve)")
    servep.add_argument("root", help="result-store root directory to serve and write")
    servep.add_argument("--host", default="127.0.0.1", help="bind address")
    servep.add_argument("--port", type=int, default=8787, help="bind port (0 = ephemeral)")
    servep.add_argument("--workers", type=int, default=2, help="computation worker threads")
    servep.add_argument("--ttl", type=float, default=60.0, help="lease TTL seconds")
    servep.add_argument(
        "--max-pending",
        type=int,
        default=None,
        metavar="N",
        help="queue depth before POSTs answer 503 (back pressure)",
    )
    servep.add_argument(
        "--shared-pi-cache",
        action="store_true",
        help="share join-kernel work across requests (disk tier inside the store)",
    )
    obsp = sub.add_parser("obs", help="observability tooling (repro.obs)")
    obssub = obsp.add_subparsers(dest="obs_command", required=True)
    oreport = obssub.add_parser("report", help="summarize a trace JSONL file")
    oreport.add_argument("trace", help="trace file written via --trace / repro.obs.trace_to")
    oreport.add_argument("--top", type=int, default=10, help="span rows to show (by total time)")
    oreport.add_argument(
        "--json", action="store_true", help="canonical JSON payload (byte-stable)"
    )

    lintp = sub.add_parser(
        "lint",
        help="run the determinism & store-protocol linter (same as python -m repro.lint)",
    )
    lintp.add_argument(
        "lint_args",
        nargs=argparse.REMAINDER,
        help="arguments forwarded to repro.lint (paths, --disable, --json, --list-rules ...)",
    )
    # argparse.REMAINDER does not swallow a *leading* option (e.g.
    # ``lint --list-rules``), so main() short-circuits the dispatch for
    # ``lint`` before parsing; the subparser exists for --help listings.
    return parser


def _maybe_trace(path: str | None) -> ContextManager[Any]:
    """A tracing scope for ``--trace FILE``; a no-op scope without it.

    Tracing is strictly additive: the simulation's records and digests
    are byte-identical with or without it (the byte-identity suite in
    ``tests/obs`` proves this), so the flag is always safe to pass.
    """
    if not path:
        return nullcontext()
    from repro.obs import trace_to

    return trace_to(path)


def _load_spec(path: str):
    from repro.scenario import ScenarioSpec

    return ScenarioSpec.from_json(Path(path).read_text(encoding="utf-8"))


def _parse_values(text: str) -> list[Any]:
    """Sweep values from the command line.

    A string that parses as one JSON array is taken verbatim (the only
    way to sweep list-valued params: ``--values '[[1,2],[3,4]]'``);
    otherwise it is split on commas with each item parsed as JSON when
    possible and kept as a string when not (``--values 0.02,0.04`` /
    ``--values powerlaw,lognormal``).
    """
    try:
        parsed = json.loads(text)
        if isinstance(parsed, list):
            return parsed
    except ValueError:
        pass
    values: list[Any] = []
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        try:
            values.append(json.loads(item))
        except ValueError:
            values.append(item)
    return values


def _sweep_out_payload(result) -> dict[str, Any]:
    """The ``--out`` JSON: everything deterministic, nothing incidental.

    Per-trial arrays and aggregate series round-trip exactly through
    Python float repr, so a resumed run and an uninterrupted run of the
    same sweep produce byte-identical files — which is precisely what
    the interrupted-sweep CI smoke diffs.  Resume markers and timings
    are deliberately excluded (they legitimately differ between runs).
    """
    points = []
    for value, s in zip(result.values, result.summaries):
        points.append(
            {
                "value": value,
                "label": s.label,
                "trials": s.trials,
                "rounds": s.rounds,
                "average_regrets": [float(x) for x in s.average_regrets],
                "closenesses": (
                    None if s.closenesses is None else [float(x) for x in s.closenesses]
                ),
                "max_abs_deficits": [float(x) for x in s.max_abs_deficits],
                "switches_per_round": [float(x) for x in s.switches_per_round],
            }
        )
    return {
        "parameter": result.parameter,
        "values": result.values,
        "points": points,
        "series": {
            "mean_average_regret": [s.mean_average_regret for s in result.summaries],
            "mean_max_abs_deficit": [s.mean_max_abs_deficit for s in result.summaries],
            "mean_switches_per_round": [
                s.mean_switches_per_round for s in result.summaries
            ],
        },
    }


def _scenario_sweep_main(args: argparse.Namespace) -> int:
    from repro.exceptions import SweepInterrupted
    from repro.scenario import sweep_scenario

    spec = _load_spec(args.file)
    values = _parse_values(args.values)
    t0 = obs_monotonic()
    try:
        with _maybe_trace(args.trace):
            result = sweep_scenario(
                spec,
                args.param,
                values,
                rounds=args.rounds,
                trials=args.trials,
                parallel=args.parallel,
                store=args.store,
                resume=args.resume,
                shared_pi_cache=args.shared_pi_cache or None,
                max_new_points=args.max_points,
            )
    except SweepInterrupted as exc:
        print(f"interrupted: {exc}")
        return SWEEP_INTERRUPTED_EXIT
    dt = obs_monotonic() - t0

    for i, summary in enumerate(result.summaries):
        origin = ""
        if result.resumed is not None:
            origin = "[cached] " if result.resumed[i] else "[ran]    "
        print(f"{origin}{summary.describe()}")
    print(result.table())
    if result.resumed is not None:
        print(
            f"({sum(result.resumed)} of {len(result.resumed)} points served "
            f"from {args.store})"
        )
    if args.out:
        payload = json.dumps(_sweep_out_payload(result), indent=2, sort_keys=True)
        Path(args.out).write_text(payload + "\n", encoding="utf-8")
        print(f"wrote {args.out}")
    print(f"(sweep took {dt:.1f}s)")
    return 0


def _ls_json_payload(store) -> dict[str, Any]:
    """The ``store ls --json`` payload: canonical and byte-stable.

    Records sort by digest and manifests carry no wall-clock fields
    (lint-enforced, RPR002), so two stores holding the same records —
    e.g. the interrupted and uninterrupted stores of the chaos smoke —
    serialize to identical bytes with no field stripping at all.
    """
    records = [
        {"digest": digest, "meta": meta}
        for digest, meta in store.iter_records()  # iter_records sorts by path
    ]
    records.sort(key=lambda r: r["digest"])
    return {"count": len(records), "records": records}


def _store_main(args: argparse.Namespace) -> int:
    from repro.store import ResultStore, canonical_json

    store = ResultStore(args.root)
    if args.store_command == "ls":
        if args.json:
            print(canonical_json(_ls_json_payload(store)))
            return 0
        count = 0
        for digest, meta in store.iter_records():
            label = meta.get("label", "?")
            coord = f"{meta.get('parameter', '?')}={meta.get('value', '?')}"
            print(
                f"{digest[:12]}  {label:<24} {coord:<28} "
                f"trials={meta.get('trials', '?')} rounds={meta.get('rounds', '?')}"
            )
            count += 1
        print(f"{count} record(s) in {store.root}")
        return 0
    if args.store_command == "info":
        print(json.dumps(store.info(), indent=2, sort_keys=True))
        return 0
    removed = store.gc(grace_seconds=args.grace, max_age_seconds=args.max_age)
    total = sum(removed.values())
    details = ", ".join(f"{k}={v}" for k, v in sorted(removed.items()))
    print(f"gc removed {total} file(s) ({details}) from {store.root}")
    return 0


def _parse_axes(axis_args: list[str]) -> list[dict[str, Any]]:
    """``--axis PARAM=V1,V2`` arguments as GridAxis dicts."""
    axes = []
    for text in axis_args:
        parameter, sep, values = text.partition("=")
        if not sep or not parameter:
            raise SystemExit(f"--axis must look like PARAM=V1,V2,... (got {text!r})")
        axes.append({"parameter": parameter, "values": _parse_values(values)})
    return axes


def _sched_main(args: argparse.Namespace) -> int:
    from repro.sched import (
        GridSpec,
        format_status,
        grid_status,
        init_grid,
        load_grid,
        run_grid,
        run_worker,
    )
    from repro.store import ResultStore, canonical_json

    if args.sched_command == "run":
        spec = _load_spec(args.file)
        grid = GridSpec(
            spec=spec,
            axes=_parse_axes(args.axis),
            rounds=args.rounds,
            trials=args.trials,
        )
        store = ResultStore(args.store)
        grid_dir = init_grid(store, grid)
        print(
            f"grid {grid.grid_digest()[:12]}: {grid.n_points} point(s) over "
            f"{' x '.join(a.parameter for a in grid.axes)} -> {grid_dir}",
            file=sys.stderr,
        )
        if args.init_only:
            if args.json:
                print(canonical_json(grid_status(store, grid, ttl=args.ttl)))
            return 0
        t0 = obs_monotonic()
        last = [""]

        def progress(status: dict[str, Any]) -> None:
            line = format_status(status)
            if line != last[0]:  # frontier counters, only when they move
                print(line, file=sys.stderr)
                last[0] = line

        with _maybe_trace(args.trace):
            status = run_grid(
                store,
                grid,
                workers=args.workers,
                ttl=args.ttl,
                poll=args.poll,
                shared_pi_cache=args.shared_pi_cache,
                progress=progress,
            )
        dt = obs_monotonic() - t0
        print(f"(grid drained in {dt:.1f}s with {args.workers} worker(s))", file=sys.stderr)
        if args.json:
            print(canonical_json(status))
        return 0

    store = ResultStore(args.root)
    grid = load_grid(store, args.grid)
    if args.sched_command == "work":
        with _maybe_trace(args.trace):
            stats = run_worker(
                store,
                grid,
                ttl=args.ttl,
                poll=args.poll,
                shared_pi_cache=args.shared_pi_cache,
                max_points=args.max_points,
                worker_id=args.worker_id,
            )
        print(
            f"worker done: computed={stats.computed} "
            f"lease_denied={stats.lease_denied} lost_leases={stats.lost_leases}"
        )
        return 0
    # status
    status = grid_status(store, grid, ttl=args.ttl)
    if args.json:
        print(canonical_json(status))
    else:
        print(f"grid {status['grid'][:12]}: {format_status(status)}")
    return 0


def _obs_main(args: argparse.Namespace) -> int:
    from repro.obs.report import render_json, render_text, trace_report

    payload = trace_report(args.trace, top=args.top)
    if args.json:
        print(render_json(payload))
    else:
        print(render_text(payload))
    return 0


def _serve_main(args: argparse.Namespace) -> int:
    from repro.serve import ScenarioService, run_server
    from repro.serve.service import DEFAULT_MAX_PENDING
    from repro.store import ResultStore

    max_pending = DEFAULT_MAX_PENDING if args.max_pending is None else args.max_pending
    service = ScenarioService(
        ResultStore(args.root),
        workers=args.workers,
        ttl=args.ttl,
        max_pending=max_pending,
        shared_pi_cache=args.shared_pi_cache,
    )
    run_server(service, host=args.host, port=args.port)
    return 0


def _scenario_main(args: argparse.Namespace) -> int:
    from repro.core.registry import available_algorithms
    from repro.env.registry import (
        available_demands,
        available_feedbacks,
        available_populations,
    )
    from repro.scenario import available_engines, run_scenario
    from repro.sim.runner import TrialSummary

    if args.scenario_command == "components":
        for kind, names in (
            ("algorithms", available_algorithms()),
            ("feedbacks", available_feedbacks()),
            ("demands", available_demands()),
            ("populations", available_populations()),
            ("engines", available_engines()),
        ):
            print(f"{kind:>12}: {', '.join(names)}")
        return 0

    if args.scenario_command == "sweep":
        return _scenario_sweep_main(args)

    spec = _load_spec(args.file)
    if args.scenario_command == "show":
        print(spec.to_json())
        return 0

    t0 = obs_monotonic()
    with _maybe_trace(args.trace):
        out = run_scenario(
            spec,
            rounds=args.rounds,
            trials=args.trials,
            parallel=args.parallel,
            batch=args.batch,
            seed=args.seed,
        )
    dt = obs_monotonic() - t0
    if isinstance(out, TrialSummary):
        print(out.describe())
    else:
        m = out.metrics
        line = (
            f"{spec.describe()}: R(t)/t = {m.average_regret:.2f}"
            f"  max|deficit| = {m.max_abs_deficit:.1f}"
            f"  switches/round = {m.switches_per_round:.2f}"
        )
        if spec.gamma_star is not None:
            closeness = m.closeness(spec.gamma_star, spec.initial_demand().total)
            line += f"  closeness = {closeness:.3f}"
        print(line)
        print(f"final loads = {m.final_loads.astype(int)}")
    print(f"(scenario took {dt:.1f}s)")
    return 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "lint":
        from repro.lint.cli import main as lint_main

        return lint_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.command == "scenario":
        return _scenario_main(args)
    if args.command == "store":
        return _store_main(args)
    if args.command == "sched":
        return _sched_main(args)
    if args.command == "serve":
        return _serve_main(args)
    if args.command == "obs":
        return _obs_main(args)
    if args.command == "list":
        for eid, title in list_experiments():
            print(f"{eid:>4}  {title}")
        return 0

    ids = (
        [eid for eid, _ in list_experiments()]
        if args.experiment.lower() == "all"
        else [args.experiment]
    )
    overall_ok = True
    for eid in ids:
        fn = get_experiment(eid)
        t0 = obs_monotonic()
        result = fn(scale=args.scale, seed=args.seed)
        dt = obs_monotonic() - t0
        print(result.report())
        print(f"({eid} took {dt:.1f}s)\n")
        overall_ok &= result.all_ok
    return 0 if overall_ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
