"""Command-line entry point: ``python -m repro.experiments`` / ``repro-experiments``.

Usage::

    repro-experiments list
    repro-experiments run E3 [--scale quick|full] [--seed N]
    repro-experiments run all [--scale quick]
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.base import get_experiment, list_experiments


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's figures and theorem-level claims.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    runp = sub.add_parser("run", help="run one experiment (or 'all')")
    runp.add_argument("experiment", help="experiment id, e.g. E3, or 'all'")
    runp.add_argument("--scale", choices=("quick", "full"), default="full")
    runp.add_argument("--seed", type=int, default=0)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for eid, title in list_experiments():
            print(f"{eid:>4}  {title}")
        return 0

    ids = (
        [eid for eid, _ in list_experiments()]
        if args.experiment.lower() == "all"
        else [args.experiment]
    )
    overall_ok = True
    for eid in ids:
        fn = get_experiment(eid)
        t0 = time.perf_counter()
        result = fn(scale=args.scale, seed=args.seed)
        dt = time.perf_counter() - t0
        print(result.report())
        print(f"({eid} took {dt:.1f}s)\n")
        overall_ok &= result.all_ok
    return 0 if overall_ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
