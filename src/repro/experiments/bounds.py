"""E6 / E7 / E8: the lower bounds (Theorems 3.3 and 3.5).

E6 regenerates the memory/closeness tradeoff curve: with ``b`` counter
bits the best achievable closeness scales like ``eps(b) ~ 2^-b`` (and no
better, per Theorem 3.3's ``c log(1/eps)`` necessity).  E7 demonstrates
the oscillation-inevitability half of Theorem 3.3: pinning the deficit
at zero provokes a blow-up of ``omega(gamma* d)``.  E8 implements the
Theorem 3.5 indistinguishable-demands adversary and verifies that any
algorithm pays ``>= ~gamma* sum_d`` per round in the worse of the two
worlds.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.oscillation import detect_blowups
from repro.analysis.report import format_table
from repro.automaton.bounded import bounded_memory_family
from repro.core.ant import AntAlgorithm
from repro.core.trivial import TrivialAlgorithm
from repro.env.critical import lambda_for_critical_value
from repro.env.demands import uniform_demands
from repro.env.feedback import SigmoidFeedback, ThresholdFeedback
from repro.experiments.base import Claim, ExperimentResult, experiment
from repro.sim.counting import CountingSimulator

__all__ = ["run_e6_memory_tradeoff", "run_e7_oscillation", "run_e8_adversarial_lb"]


@experiment("E6", "Theorem 3.3: memory/closeness tradeoff (closeness ~ 2^-bits)")
def run_e6_memory_tradeoff(scale: str = "full", seed: int = 0) -> ExperimentResult:
    n = 80000 if scale != "quick" else 40000
    demand = uniform_demands(n=n, k=4)
    gs = 0.01
    lam = lambda_for_critical_value(demand, gamma_star=gs)
    gamma = 0.04
    rounds = 150000 if scale != "quick" else 30000
    burn = rounds // 10
    bits = (1, 5, 6, 7) if scale == "quick" else (1, 5, 6, 7, 8)

    family = bounded_memory_family(gamma, bits)
    rows, closenesses = [], []
    for i, spec in enumerate(family):
        if spec.window > 1:
            start = np.round(
                demand.as_array() * (1.0 + 2.0 * spec.algorithm.step_size)
            ).astype(np.int64)
        else:
            start = np.round(demand.as_array() * (1.0 + 2.0 * gamma)).astype(np.int64)
        sim = CountingSimulator(
            spec.algorithm, demand, SigmoidFeedback(lam), seed=seed + i, initial_loads=start
        )
        out = sim.run(rounds, burn_in=burn)
        c = out.metrics.closeness(gs, demand.total)
        closenesses.append(c)
        rows.append([spec.counter_bits, spec.window, spec.eps_effective, c])

    res = ExperimentResult("E6", run_e6_memory_tradeoff.title, scale)
    res.series["counter_bits"] = np.array([s.counter_bits for s in family], dtype=float)
    res.series["closeness"] = np.array(closenesses)
    res.tables.append(
        format_table(
            ["counter bits", "median window m", "eps(b)", "measured closeness"],
            rows,
            title=f"Memory/closeness tradeoff, gamma={gamma}, n={n}",
        )
    )
    # Shape claims: closeness decreases with memory and roughly halves
    # per extra bit once in the Precise-Sigmoid regime.
    cl = np.array(closenesses)
    res.claims.append(
        Claim.shape(
            "closeness monotone non-increasing in memory", bool(np.all(np.diff(cl) <= 1e-9))
        )
    )
    ps = cl[1:]  # the Precise-Sigmoid members (bits >= 5)
    halving = ps[:-1] / ps[1:]
    res.claims.append(
        Claim.shape(
            "closeness ~halves per extra counter bit (ratios in [1.4, 2.9])",
            bool(np.all((halving >= 1.4) & (halving <= 2.9))),
            measured=float(halving.mean()),
            bound=2.0,
        )
    )
    return res


@experiment("E7", "Theorem 3.3: pinning the deficit near 0 provokes omega(gamma*d) blow-ups")
def run_e7_oscillation(scale: str = "full", seed: int = 0) -> ExperimentResult:
    """Start exactly demand-matched (deficit pinned at 0, the heart of the
    grey zone) and measure the resulting excursion relative to
    ``gamma* d`` across colony sizes."""
    gs = 0.01
    gamma = 0.025
    sizes = [4000, 8000, 16000] if scale != "quick" else [4000, 8000]
    rounds = 4000
    rows, ratios = [], []
    for i, n in enumerate(sizes):
        demand = uniform_demands(n=n, k=4)
        lam = lambda_for_critical_value(demand, gamma_star=gs)
        sim = CountingSimulator(
            AntAlgorithm(gamma=gamma),
            demand,
            SigmoidFeedback(lam),
            seed=seed + i,
            initial_loads=demand.as_array(),  # deficit exactly 0 everywhere
        )
        out = sim.run(rounds, trace_stride=1)
        deficits = out.trace.deficits(demand.as_array())
        grey_halfwidth = gs * demand.min_demand
        peak = float(np.abs(deficits).max())
        blowups = detect_blowups(deficits[:, 0], grey_halfwidth)
        ratios.append(peak / grey_halfwidth)
        rows.append([n, grey_halfwidth, peak, peak / grey_halfwidth, len(blowups)])

    res = ExperimentResult("E7", run_e7_oscillation.title, scale)
    res.series["n"] = np.array(sizes, dtype=float)
    res.series["blowup_over_grey"] = np.array(ratios)
    res.tables.append(
        format_table(
            ["n", "gamma*d", "peak |deficit|", "peak/(gamma*d)", "#excursions(task 0)"],
            rows,
            title="Blow-up after pinning the deficit at 0 (Algorithm Ant)",
        )
    )
    for n, r in zip(sizes, ratios):
        res.claims.append(
            Claim.lower(f"blow-up exceeds 5x the grey half-width (n={n})", r, 5.0)
        )
    return res


@experiment("E8", "Theorem 3.5: indistinguishable-demands adversary forces regret >= ~gamma* sum_d")
def run_e8_adversarial_lb(scale: str = "full", seed: int = 0) -> ExperimentResult:
    """Fixed-threshold feedback is simultaneously a valid adversarial
    answer for demands ``d`` and ``d' = d - 2 tau``; the transcripts are
    identical, so the average regret over the two worlds is at least
    ``tau`` per task per round for *any* algorithm.  We run Algorithm
    Ant and the trivial algorithm against it."""
    n = 8000 if scale != "quick" else 4000
    k = 4
    demand = uniform_demands(n=n, k=k)
    d = demand.as_array().astype(np.float64)
    gamma_ad = 0.04
    tau = gamma_ad * d / (1.0 + gamma_ad)
    d_prime = d - 2.0 * tau
    thresholds = d * (1.0 - gamma_ad)  # = d'(1+gamma_ad), valid in both worlds
    rounds = 20000 if scale != "quick" else 6000
    burn = rounds // 2

    algorithms = {
        "ant(gamma=0.0625)": AntAlgorithm(gamma=1.0 / 16.0),
        "trivial": TrivialAlgorithm(),
    }
    rows, worst_rates = [], []
    lb = float(tau.sum())  # per-round lower bound on the two-world average
    for i, (name, alg) in enumerate(algorithms.items()):
        fb = ThresholdFeedback(thresholds, d)
        sim = CountingSimulator(alg, demand, fb, seed=seed + i)
        out = sim.run(rounds, trace_stride=1, burn_in=burn)
        loads = out.trace.loads.astype(np.float64)
        steady = loads[loads.shape[0] // 2 :]
        regret_d = np.abs(d[np.newaxis, :] - steady).sum(axis=1).mean()
        regret_dp = np.abs(d_prime[np.newaxis, :] - steady).sum(axis=1).mean()
        avg_two_worlds = 0.5 * (regret_d + regret_dp)
        worst_rates.append(avg_two_worlds)
        rows.append([name, regret_d, regret_dp, avg_two_worlds, lb])

    res = ExperimentResult("E8", run_e8_adversarial_lb.title, scale)
    res.tables.append(
        format_table(
            ["algorithm", "regret rate vs d", "vs d'", "two-world average", "lower bound k*tau"],
            rows,
            title=f"Theorem 3.5 adversary, gamma_ad={gamma_ad}, tau={tau[0]:.1f} per task",
        )
    )
    for (name, _), rate in zip(algorithms.items(), worst_rates):
        res.claims.append(
            Claim.lower(f"two-world average regret rate ({name})", rate, 0.95 * lb)
        )
    res.series["lower_bound"] = np.array([lb])
    res.series["two_world_average"] = np.array(worst_rates)
    res.notes.append(
        "identical transcripts: the feedback depends only on the load, so the "
        "same run serves both worlds; regret is evaluated against each demand."
    )
    return res
