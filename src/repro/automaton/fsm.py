"""Explicit finite ant automata (the paper's computational model).

An ant is a finite state machine: each round it reads the feedback
vector (one LACK/OVERLOAD bit per task, i.e. an alphabet of ``2^k``
symbols) and transitions stochastically; each state outputs an action
(idle or a task).  Assumptions 2.2 require that every state be reachable
from every other under *some* feedback sequence — i.e. the support
digraph of the transition relation is strongly connected — which
:meth:`FiniteAntAutomaton.check_reachability` verifies with networkx.

:class:`FSMColonyAlgorithm` adapts an automaton to the
:class:`~repro.core.base.ColonyAlgorithm` interface so a population of
identical automata runs under the standard engines.  The per-round
update is vectorized: feedback rows are packed into symbol indices and
next states are drawn by inverse-CDF lookup into the cumulative
transition tensor — no per-ant Python loop.
"""

from __future__ import annotations

import numpy as np
import networkx as nx

from repro.core.base import ColonyAlgorithm
from repro.exceptions import ConfigurationError
from repro.types import IDLE, AssignmentVector, LackMatrix

__all__ = ["FiniteAntAutomaton", "FSMColonyAlgorithm"]


class FiniteAntAutomaton:
    """Tabular stochastic automaton over the feedback alphabet.

    Parameters
    ----------
    transitions:
        Array of shape ``(S, 2**k, S)``: ``transitions[s, f, s']`` is the
        probability of moving from state ``s`` to ``s'`` on feedback
        symbol ``f`` (the symbol packs the per-task LACK bits,
        ``f = sum_j lack_j << j``).  Rows must sum to 1.
    outputs:
        Array of shape ``(S,)``: action of each state (``-1`` for idle or
        a task index).
    k:
        Number of tasks.
    """

    def __init__(self, transitions: np.ndarray, outputs: np.ndarray, k: int) -> None:
        transitions = np.asarray(transitions, dtype=np.float64)
        outputs = np.asarray(outputs, dtype=np.int64)
        if transitions.ndim != 3 or transitions.shape[0] != transitions.shape[2]:
            raise ConfigurationError(
                f"transitions must have shape (S, 2**k, S), got {transitions.shape}"
            )
        S = transitions.shape[0]
        if transitions.shape[1] != 2**k:
            raise ConfigurationError(
                f"feedback alphabet must have 2**k={2**k} symbols, got {transitions.shape[1]}"
            )
        if outputs.shape != (S,):
            raise ConfigurationError(f"outputs must have shape ({S},)")
        if np.any(transitions < 0):
            raise ConfigurationError("transition probabilities must be non-negative")
        sums = transitions.sum(axis=2)
        if not np.allclose(sums, 1.0, atol=1e-9):
            raise ConfigurationError("every transition row must sum to 1")
        if np.any((outputs < IDLE) | (outputs >= k)):
            raise ConfigurationError("outputs must be -1 (idle) or a task index")
        self.transitions = transitions
        self.outputs = outputs
        self.k = int(k)
        # Precompute the cumulative tensor for inverse-CDF sampling.
        self._cumulative = np.cumsum(transitions, axis=2)

    @property
    def num_states(self) -> int:
        return int(self.transitions.shape[0])

    @property
    def memory_bits(self) -> float:
        """Bits needed to store one state: ``log2(S)``."""
        return float(np.log2(self.num_states))

    # ------------------------------------------------------------------
    def support_digraph(self) -> nx.DiGraph:
        """Digraph with an edge ``s -> s'`` iff some symbol moves s to s'."""
        reach = (self.transitions > 0.0).any(axis=1)
        g = nx.DiGraph()
        g.add_nodes_from(range(self.num_states))
        src, dst = np.nonzero(reach)
        g.add_edges_from(zip(src.tolist(), dst.tolist()))
        return g

    def check_reachability(self) -> bool:
        """Assumptions 2.2: every state reachable from every state.

        True iff the support digraph is strongly connected.
        """
        return nx.is_strongly_connected(self.support_digraph())

    def validate_assumption_2_2(self) -> None:
        """Raise :class:`ConfigurationError` when Assumptions 2.2 fail."""
        if not self.check_reachability():
            comps = list(nx.strongly_connected_components(self.support_digraph()))
            raise ConfigurationError(
                f"Assumptions 2.2 violated: {len(comps)} strongly connected "
                f"components (need 1); smallest: {min(comps, key=len)}"
            )

    # ------------------------------------------------------------------
    def step_population(
        self,
        states: np.ndarray,
        lack: LackMatrix,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Advance a population of automata one round (vectorized).

        ``states`` has shape ``(n,)``; ``lack`` shape ``(n, k)``.
        Returns the new state array.
        """
        if self.k > 20:
            raise ConfigurationError("feedback alphabet too large to pack (k > 20)")
        weights = (1 << np.arange(self.k)).astype(np.int64)
        symbols = lack.astype(np.int64) @ weights
        cdf = self._cumulative[states, symbols]  # (n, S) gather
        u = rng.random(states.shape[0])
        return np.argmax(cdf > u[:, np.newaxis], axis=1).astype(np.int64)

    def actions(self, states: np.ndarray) -> AssignmentVector:
        """Map a state array to the corresponding action array."""
        return self.outputs[states]


class FSMColonyAlgorithm(ColonyAlgorithm):
    """Run a colony of identical :class:`FiniteAntAutomaton` ants.

    Parameters
    ----------
    automaton:
        The per-ant machine (validated against Assumptions 2.2 unless
        ``check_assumptions=False`` — some deliberately crippled automata
        in the Theorem 3.3 experiments are not strongly connected).
    initial_state_for_action:
        Maps an initial action (``-1`` or task id) to an automaton state,
        used to adopt arbitrary initial assignments (self-stabilization).
        Default: the first state whose output equals the action.
    """

    name = "fsm"
    phase_length = 1

    def __init__(
        self,
        automaton: FiniteAntAutomaton,
        *,
        check_assumptions: bool = True,
        initial_state_for_action: dict[int, int] | None = None,
    ) -> None:
        if check_assumptions:
            automaton.validate_assumption_2_2()
        self.automaton = automaton
        if initial_state_for_action is None:
            initial_state_for_action = {}
            for action in range(-1, automaton.k):
                matches = np.nonzero(automaton.outputs == action)[0]
                if matches.size:
                    initial_state_for_action[action] = int(matches[0])
        self.initial_state_for_action = initial_state_for_action

    def create_state(self, n: int, k: int, initial_assignment: AssignmentVector):
        if k != self.automaton.k:
            raise ConfigurationError(
                f"automaton built for k={self.automaton.k}, simulation has k={k}"
            )
        states = np.zeros(n, dtype=np.int64)
        for action, state in self.initial_state_for_action.items():
            states[initial_assignment == action] = state
        missing = set(np.unique(initial_assignment)) - set(self.initial_state_for_action)
        if missing:
            raise ConfigurationError(
                f"no automaton state maps to initial actions {sorted(missing)}"
            )
        return {"states": states, "assignment": self.automaton.actions(states)}

    def step(self, state, t: int, lack: LackMatrix, rng: np.random.Generator):
        state["states"] = self.automaton.step_population(state["states"], lack, rng)
        state["assignment"] = self.automaton.actions(state["states"])
        return state["assignment"]

    def memory_bits(self, k: int) -> float:
        return self.automaton.memory_bits
