"""Finite-state-machine substrate.

The paper models each ant as a finite state automaton whose states must
all be mutually reachable (Assumptions 2.2) and proves the memory /
regret tradeoff of Theorem 3.3 for automata with ``c log(1/eps)`` bits.
This subpackage provides:

* :class:`~repro.automaton.fsm.FiniteAntAutomaton` — explicit tabular
  automata over feedback alphabets, with an Assumption 2.2 reachability
  verifier built on networkx strong connectivity;
* :class:`~repro.automaton.fsm.FSMColonyAlgorithm` — adapter running a
  population of identical automata under the standard engine;
* :func:`~repro.automaton.compile_ant.compile_ant_automaton` — Algorithm
  Ant compiled into an explicit automaton (used to validate the FSM
  substrate against the vectorized implementation, and to check that
  Algorithm Ant satisfies Assumption 2.2);
* :func:`~repro.automaton.bounded.bounded_memory_family` — the
  Theorem 3.3 experiment family: median-window algorithms whose per-ant
  memory is capped at a given number of counter bits.
"""

from repro.automaton.fsm import FiniteAntAutomaton, FSMColonyAlgorithm
from repro.automaton.compile_ant import compile_ant_automaton
from repro.automaton.bounded import bounded_memory_family, BoundedMemorySpec

__all__ = [
    "FiniteAntAutomaton",
    "FSMColonyAlgorithm",
    "compile_ant_automaton",
    "bounded_memory_family",
    "BoundedMemorySpec",
]
