"""Memory-bounded algorithm family for the Theorem 3.3 experiment (E6).

Theorem 3.3: with ``c * log(1/eps)`` bits of memory no algorithm can be
better than ``eps``-far, and Algorithm Precise Sigmoid shows
``O(log(1/eps))`` bits suffice for ``eps``-closeness — i.e. the optimal
achievable closeness decays *exponentially in the memory budget*.

The family below instantiates the achievability side at each budget:
``b`` counter bits hold a median window of ``m = 2^b - 1`` rounds, which
is Algorithm Precise Sigmoid at ``eps(b) = 2 c_chi / (m - 1)``; the
smallest budgets (windows below the ``eps < 1`` validity floor) fall
back to Algorithm Ant, the 1-sample-bit member.  Measured closeness per
budget should therefore halve per added bit until it hits the Ant
ceiling — the tradeoff curve E6 regenerates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.ant import AntAlgorithm
from repro.core.base import ColonyAlgorithm
from repro.core.constants import DEFAULT_CONSTANTS, AlgorithmConstants
from repro.core.precise_sigmoid import PreciseSigmoidAlgorithm
from repro.exceptions import ConfigurationError
from repro.util.validation import check_integer

__all__ = ["BoundedMemorySpec", "bounded_memory_family"]


@dataclass(frozen=True)
class BoundedMemorySpec:
    """One member of the memory/closeness tradeoff family."""

    counter_bits: int
    window: int
    eps_effective: float
    algorithm: ColonyAlgorithm

    @property
    def predicted_closeness_scale(self) -> float:
        """The theory-side scale ``eps(b)`` (1.0 for the Ant member)."""
        return min(self.eps_effective, 1.0)


def bounded_memory_family(
    gamma: float,
    counter_bits: list[int] | tuple[int, ...] = (1, 5, 6, 7, 8),
    constants: AlgorithmConstants = DEFAULT_CONSTANTS,
) -> list[BoundedMemorySpec]:
    """Build the family of algorithms, one per memory budget.

    Parameters
    ----------
    gamma:
        Learning rate shared by all members (>= the critical value).
    counter_bits:
        Memory budgets; each budget ``b`` allows a median window
        ``m = 2^b - 1``.  Budgets whose window is too small for a valid
        Precise-Sigmoid ``eps`` (``m <= 2*c_chi + 1``) produce the
        Algorithm Ant member (window 1).
    """
    specs: list[BoundedMemorySpec] = []
    for b in counter_bits:
        b = check_integer("counter_bits", b, minimum=1)
        m = 2**b - 1
        eps = 2.0 * constants.c_chi / (m - 1) if m > 1 else math.inf
        if eps >= 1.0:
            specs.append(
                BoundedMemorySpec(
                    counter_bits=b,
                    window=1,
                    eps_effective=1.0,
                    algorithm=AntAlgorithm(gamma=gamma, constants=constants),
                )
            )
        else:
            alg = PreciseSigmoidAlgorithm(gamma=gamma, eps=eps, constants=constants)
            if alg.m != m:
                raise ConfigurationError(
                    f"window inversion failed: bits={b} -> m={m} but algorithm chose {alg.m}"
                )
            specs.append(
                BoundedMemorySpec(counter_bits=b, window=m, eps_effective=eps, algorithm=alg)
            )
    return specs
