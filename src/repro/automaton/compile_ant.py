"""Algorithm Ant compiled into an explicit finite automaton.

This serves three purposes:

1. it *proves constructively* that Algorithm Ant is implementable by the
   paper's computational model (a constant-memory FSM whose size is
   independent of ``n``);
2. it lets the test suite verify Assumptions 2.2 for Algorithm Ant
   mechanically (strong connectivity of the support digraph);
3. it cross-validates the FSM substrate against the hand-vectorized
   implementation (same distribution of trajectories on small colonies).

State encoding (``k`` tasks, alphabet ``2^k`` symbols of packed LACK bits):

* ``A(a)`` — start of an odd round holding action ``a`` in
  ``{idle, 0..k-1}``: the decision state at a phase boundary.
* ``B_idle(s1)`` — idle ant mid-phase remembering its first sample
  ``s1`` (all ``k`` bits, needed to pick a join target).
* ``B(j, s1_j, paused)`` — working ant mid-phase on task ``j``
  remembering only *its own task's* first-sample bit and whether it
  temporarily paused.

Total ``(k+1) + 2^k + 4k`` states — constant in ``n`` as the paper
requires (for the mid-phase working states we keep one own-task bit, not
the full vector, since the algorithm never reads the rest).
"""

from __future__ import annotations

import numpy as np

from repro.automaton.fsm import FiniteAntAutomaton
from repro.core.constants import DEFAULT_CONSTANTS, AlgorithmConstants
from repro.exceptions import ConfigurationError
from repro.types import IDLE
from repro.util.validation import check_in_range

__all__ = ["compile_ant_automaton"]


def compile_ant_automaton(
    k: int,
    gamma: float,
    constants: AlgorithmConstants = DEFAULT_CONSTANTS,
) -> tuple[FiniteAntAutomaton, dict[int, int]]:
    """Build the Algorithm-Ant automaton for ``k`` tasks.

    Returns ``(automaton, initial_state_for_action)`` where the dict maps
    an action to its ``A(action)`` state (for adopting arbitrary initial
    assignments).

    Limited to ``k <= 6`` (the ``2^k`` sample register of idle ants).
    """
    if not 1 <= k <= 6:
        raise ConfigurationError(f"compile_ant_automaton supports 1 <= k <= 6, got {k}")
    gamma = check_in_range("gamma", gamma, 0.0, 1.0 / 16.0, inclusive_low=False)
    p_pause = min(constants.c_s * gamma, 1.0)
    p_leave = gamma / constants.c_d

    n_symbols = 2**k
    # ---- state numbering -------------------------------------------------
    states: list[tuple] = []
    index: dict[tuple, int] = {}

    def add(desc: tuple) -> int:
        index[desc] = len(states)
        states.append(desc)
        return index[desc]

    for a in range(-1, k):  # A(a)
        add(("A", a))
    for s1 in range(n_symbols):  # B_idle(s1)
        add(("Bi", s1))
    for j in range(k):  # B(j, s1_bit, paused)
        for s1_bit in (0, 1):
            for paused in (0, 1):
                add(("Bw", j, s1_bit, paused))

    S = len(states)
    T = np.zeros((S, n_symbols, S), dtype=np.float64)
    outputs = np.zeros(S, dtype=np.int64)

    # ---- outputs ----------------------------------------------------------
    for desc, s in index.items():
        if desc[0] == "A":
            outputs[s] = desc[1]
        elif desc[0] == "Bi":
            outputs[s] = IDLE
        else:  # Bw
            _, j, _, paused = desc
            outputs[s] = IDLE if paused else j

    # ---- odd-round transitions: A(a) --f--> B states -----------------------
    for a in range(-1, k):
        src = index[("A", a)]
        for f in range(n_symbols):
            if a == IDLE:
                T[src, f, index[("Bi", f)]] = 1.0
            else:
                bit = (f >> a) & 1
                T[src, f, index[("Bw", a, bit, 1)]] += p_pause
                T[src, f, index[("Bw", a, bit, 0)]] += 1.0 - p_pause

    # ---- even-round transitions: B states --f2--> A states -----------------
    for s1 in range(n_symbols):
        src = index[("Bi", s1)]
        for f2 in range(n_symbols):
            both = s1 & f2  # tasks whose two samples both read LACK
            targets = [j for j in range(k) if (both >> j) & 1]
            if targets:
                share = 1.0 / len(targets)
                for j in targets:
                    T[src, f2, index[("A", j)]] += share
            else:
                T[src, f2, index[("A", IDLE)]] += 1.0
    for j in range(k):
        for s1_bit in (0, 1):
            for paused in (0, 1):
                src = index[("Bw", j, s1_bit, paused)]
                for f2 in range(n_symbols):
                    s2_bit = (f2 >> j) & 1
                    if s1_bit == 0 and s2_bit == 0:  # both samples OVERLOAD
                        T[src, f2, index[("A", IDLE)]] += p_leave
                        T[src, f2, index[("A", j)]] += 1.0 - p_leave
                    else:
                        T[src, f2, index[("A", j)]] += 1.0

    automaton = FiniteAntAutomaton(T, outputs, k)
    initial = {a: index[("A", a)] for a in range(-1, k)}
    return automaton, initial
