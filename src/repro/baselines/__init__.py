"""Baseline algorithms the paper compares against or builds upon."""

from repro.baselines.cornejo import BackoffBinaryAlgorithm

__all__ = ["BackoffBinaryAlgorithm"]
