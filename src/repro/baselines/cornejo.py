"""Noise-free binary-feedback baseline (in the spirit of Cornejo et al. [11]).

The predecessor paper [11] assumes *exact* binary feedback — every ant
reads LACK iff ``W <= d`` — and gives a simple algorithm converging to an
almost-optimal allocation.  Its exact pseudocode is not reproduced in the
present paper, so this module implements a faithful-in-spirit
**reconstruction** (documented substitution, see DESIGN.md): exponential
backoff on the join side, which is the standard way to avoid synchronous
herding under sharp feedback.

Rule per round (per ant, backoff exponent ``b`` in ``[0, max_backoff]``):

* working, task reads OVERLOAD -> leave with probability 1/2 (halving
  the excess geometrically); a leaver sets ``b += 1``;
* working, task reads LACK -> stay; ``b`` decays by 1 (success);
* idle, some task reads LACK -> join a uniform lacking task with
  probability ``2^-b``; if the gate fails, ``b`` decays by 1 with a slow
  ``recovery_rate`` (so a past herding event does not freeze the colony
  forever, but recovery is gradual enough not to re-herd);
* idle, nothing lacking -> stay idle; ``b`` decays by 1.

With exact feedback the backoff damps the catastrophic herding of the
plain trivial algorithm (amplitude drops from Theta(n) to a wandering
band of a few hundred ants at n=8000), but measured equilibria still
fluctuate far more than the paper's algorithms: uncoordinated
exponential backoff cannot hold a tight allocation, which is precisely
the coordination gap the paper's two-sample phase structure closes.
The rate-limited trivial variant (``TrivialAlgorithm(join_probability=q,
leave_probability=q)``) is the better-behaved memoryless baseline.

The ``O(log n)``-bit backoff counter exceeds the constant-memory model
of the present paper; it is a baseline, not a competitor, in the
memory-bounded experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.base import ColonyAlgorithm, uniform_row_choice
from repro.exceptions import ConfigurationError
from repro.types import IDLE, AssignmentVector, LackMatrix
from repro.util.validation import check_integer

__all__ = ["BackoffBinaryAlgorithm", "BackoffState"]


@dataclass
class BackoffState:
    """Assignment plus per-ant backoff exponent."""

    assignment: AssignmentVector
    backoff: np.ndarray  # (n,) int8

    @property
    def n(self) -> int:
        return int(self.assignment.shape[0])


class BackoffBinaryAlgorithm(ColonyAlgorithm):
    """Exponential-backoff allocation for sharp binary feedback.

    Parameters
    ----------
    max_backoff:
        Cap on the backoff exponent (join probability floor ``2^-cap``).
        ``ceil(log2 n)`` is the natural choice; the default 20 covers
        colonies up to a million ants.
    recovery_rate:
        Per-round probability that an idle ant whose join gate failed
        relaxes its backoff by one step.
    """

    name = "backoff_binary"
    phase_length = 1

    def __init__(self, max_backoff: int = 20, recovery_rate: float = 0.002) -> None:
        self.max_backoff = check_integer("max_backoff", max_backoff, minimum=1)
        if not 0.0 <= recovery_rate <= 1.0:
            raise ConfigurationError(f"recovery_rate must be in [0,1], got {recovery_rate}")
        self.recovery_rate = float(recovery_rate)

    def create_state(self, n: int, k: int, initial_assignment: AssignmentVector) -> BackoffState:
        assignment = np.asarray(initial_assignment, dtype=np.int64).copy()
        if assignment.shape != (n,):
            raise ConfigurationError(f"initial assignment must have shape ({n},)")
        return BackoffState(assignment=assignment, backoff=np.zeros(n, dtype=np.int8))

    def step(
        self,
        state: BackoffState,
        t: int,
        lack: LackMatrix,
        rng: np.random.Generator,
    ) -> AssignmentVector:
        idle = state.assignment == IDLE
        working = ~idle

        if np.any(working):
            idx = np.nonzero(working)[0]
            tasks = state.assignment[idx]
            overload_own = ~lack[idx, tasks]
            leave = overload_own & (rng.random(idx.size) < 0.5)
            leavers = idx[leave]
            state.assignment[leavers] = IDLE
            state.backoff[leavers] = np.minimum(
                state.backoff[leavers] + 1, self.max_backoff
            )
            stayers = idx[~overload_own]
            relax_w = stayers[rng.random(stayers.size) < self.recovery_rate]
            state.backoff[relax_w] = np.maximum(state.backoff[relax_w] - 1, 0)

        if np.any(idle):
            idx = np.nonzero(idle)[0]
            any_lack = lack[idx].any(axis=1)
            gate = rng.random(idx.size) < np.exp2(
                -state.backoff[idx].astype(np.float64)
            )
            try_join = any_lack & gate
            if np.any(try_join):
                joiners = idx[try_join]
                state.assignment[joiners] = uniform_row_choice(lack[joiners], rng)
            # Gate failures relax slowly; fully calm idle ants relax faster.
            blocked = idx[any_lack & ~gate]
            relax = blocked[rng.random(blocked.size) < self.recovery_rate]
            state.backoff[relax] = np.maximum(state.backoff[relax] - 1, 0)
            calm = idx[~any_lack]
            relax_c = calm[rng.random(calm.size) < self.recovery_rate]
            state.backoff[relax_c] = np.maximum(state.backoff[relax_c] - 1, 0)

        return state.assignment

    def memory_bits(self, k: int) -> float:
        return float(np.log2(k + 1) + np.log2(self.max_backoff + 1))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BackoffBinaryAlgorithm(max_backoff={self.max_backoff})"
