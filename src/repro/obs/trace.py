"""Span tracing: append-only JSONL event files over the clock seam.

A :class:`Tracer` appends one canonical-JSON line per event to a trace
file, using the same write protocol as the scheduler's reclaim log
(``os.open(..., O_APPEND)`` + one ``os.write`` per whole line, so
concurrent writers interleave complete lines, and a crash can lose at
most the final line — ``repro.obs.report`` tolerates a torn tail).

Line schema (keys always in canonical order)::

    {"attrs":{...},"dur":0.25,"kind":"span","name":"join_kernel","seq":3,"t":1.5}

* ``seq`` — per-tracer sequence number (total order of emission);
* ``t`` — seconds since the tracer's own monotonic origin, read from
  the injected :class:`~repro.obs.clock.Clock` (a
  :class:`~repro.obs.clock.FakeClock` makes whole files byte-identical
  across runs — the determinism tests rely on this);
* ``dur`` — present for ``kind == "span"``, absent for plain events;
* ``attrs`` — caller-supplied canonical-JSON-able values; span attrs
  carry store digests (``digest=...``) so traces link to records.

Instrumented code never talks to a tracer directly: it calls the
module-level :func:`span` / :func:`event`, which are no-ops unless a
tracer is installed (:func:`install_tracer` / :func:`trace_to`).  That
is the null-overhead switch — with no tracer installed the hot path is
one global read and a ``None`` check, and the byte-identity suite
proves records are unchanged with tracing on, off, or disabled
mid-run.
"""

from __future__ import annotations

import os
import threading
from collections.abc import Iterator
from contextlib import contextmanager
from pathlib import Path
from types import TracebackType

from repro.obs.clock import Clock, get_clock
from repro.store.digest import canonical_json

__all__ = [
    "Tracer",
    "complete_span",
    "current_tracer",
    "event",
    "install_tracer",
    "span",
    "trace_to",
    "uninstall_tracer",
]

AttrValue = str | int | float | bool | None


class Tracer:
    """Appends canonical-JSON event lines to one trace file."""

    def __init__(self, path: str | Path, *, clock: Clock | None = None) -> None:
        self.path = Path(path)
        self._clock = clock if clock is not None else get_clock()
        self._lock = threading.Lock()
        self._seq = 0
        self._fd: int | None = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        self._origin = self._clock.monotonic()

    # ------------------------------------------------------------------
    def _emit(self, name: str, kind: str, start: float, dur: float | None,
              attrs: dict[str, AttrValue]) -> None:
        record: dict[str, object] = {
            "attrs": attrs,
            "kind": kind,
            "name": name,
            "t": start - self._origin,
        }
        if dur is not None:
            record["dur"] = dur
        with self._lock:
            if self._fd is None:
                return
            record["seq"] = self._seq
            self._seq += 1
            line = canonical_json(record) + "\n"
            os.write(self._fd, line.encode("utf-8"))

    def event(self, name: str, **attrs: AttrValue) -> None:
        """Append a point-in-time event line."""
        self._emit(name, "event", self._clock.monotonic(), None, attrs)

    @contextmanager
    def span(self, name: str, **attrs: AttrValue) -> Iterator[None]:
        """Time a block; append a ``kind=span`` line with its duration."""
        start = self._clock.monotonic()
        try:
            yield
        finally:
            self._emit(name, "span", start, self._clock.monotonic() - start, attrs)

    def complete(self, name: str, dur: float, **attrs: AttrValue) -> None:
        """Append a span whose duration the caller already measured.

        For call sites that time an operation once through the clock
        seam (to feed a histogram) and also want the span on the trace
        without paying a second pair of clock reads.  ``t`` is the span
        start, reconstructed as ``now - dur``.
        """
        self._emit(name, "span", self._clock.monotonic() - dur, dur, attrs)

    def close(self) -> None:
        """Close the trace file; further emits become no-ops."""
        with self._lock:
            if self._fd is not None:
                os.close(self._fd)
                self._fd = None

    def __enter__(self) -> Tracer:
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()


# ----------------------------------------------------------------------
# The process-global tracer: instrumentation calls the module functions,
# which no-op unless one is installed.

_tracer: Tracer | None = None


def install_tracer(target: Tracer | str | Path, *, clock: Clock | None = None) -> Tracer:
    """Install the process tracer (closing any previous one)."""
    global _tracer
    tracer = target if isinstance(target, Tracer) else Tracer(target, clock=clock)
    previous = _tracer
    _tracer = tracer
    if previous is not None and previous is not tracer:
        previous.close()
    return tracer


def uninstall_tracer() -> None:
    """Remove and close the process tracer; spans become no-ops again."""
    global _tracer
    previous = _tracer
    _tracer = None
    if previous is not None:
        previous.close()


def current_tracer() -> Tracer | None:
    """The installed process tracer, if any."""
    return _tracer


@contextmanager
def trace_to(path: str | Path, *, clock: Clock | None = None) -> Iterator[Tracer]:
    """Install a tracer writing to ``path`` for the duration of a block."""
    tracer = install_tracer(path, clock=clock)
    try:
        yield tracer
    finally:
        if _tracer is tracer:
            uninstall_tracer()
        else:  # someone swapped tracers mid-block; just close ours
            tracer.close()


def event(name: str, **attrs: AttrValue) -> None:
    """Emit an event through the installed tracer; no-op without one."""
    tracer = _tracer
    if tracer is not None:
        tracer.event(name, **attrs)


def complete_span(name: str, dur: float, **attrs: AttrValue) -> None:
    """Emit a caller-timed span through the tracer; no-op without one."""
    tracer = _tracer
    if tracer is not None:
        tracer.complete(name, dur, **attrs)


@contextmanager
def span(name: str, **attrs: AttrValue) -> Iterator[None]:
    """Span through the installed tracer; near-free no-op without one.

    The tracer is looked up once at entry — installing or removing a
    tracer mid-span affects the *next* span, never tears this one.
    """
    tracer = _tracer
    if tracer is None:
        yield
        return
    with tracer.span(name, **attrs):
        yield
