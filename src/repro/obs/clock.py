"""The single sanctioned clock seam for the observability layer.

Everything in ``repro`` that *measures durations* or *stamps wall time*
must go through this module, the way every RNG goes through
``repro.util.rng``.  The lint rule RPR002 quarantines the whole
``repro/obs/`` package against direct ``time.*``/``datetime.*`` calls —
this file is the one sanctioned exception — so a grep for clock use in
instrumentation code has exactly one place to land.

Two clock kinds:

* :class:`SystemClock` — the real thing (``time.perf_counter`` for
  durations, ``time.time`` for wall stamps).
* :class:`FakeClock` — fully deterministic: starts at a fixed origin and
  advances by a fixed ``tick`` per ``monotonic()`` call (plus explicit
  :meth:`FakeClock.advance`).  Injecting one makes trace files
  byte-identical across runs, which is how the trace-determinism tests
  work.

The process default is swappable (:func:`set_clock`,
:func:`use_clock`) so tests and the CLI can inject without threading a
clock argument through every call site.

Determinism note: nothing read from a clock may ever flow into a
digest, manifest, or record — that is RPR007's job to enforce.  Clock
values are *observations about* a run, never *inputs to* it.
"""

from __future__ import annotations

import time
from collections.abc import Iterator
from contextlib import contextmanager

__all__ = [
    "Clock",
    "FakeClock",
    "SystemClock",
    "get_clock",
    "monotonic",
    "set_clock",
    "use_clock",
    "wall",
]


class Clock:
    """Abstract clock: a monotonic duration source plus a wall stamp."""

    def monotonic(self) -> float:
        """Seconds from an arbitrary origin; never goes backwards."""
        raise NotImplementedError

    def wall(self) -> float:
        """Seconds since the Unix epoch (may step; never for durations)."""
        raise NotImplementedError


class SystemClock(Clock):
    """The real process clocks."""

    def monotonic(self) -> float:
        return time.perf_counter()

    def wall(self) -> float:
        return time.time()


class FakeClock(Clock):
    """A deterministic clock for tests and byte-identical traces.

    ``monotonic()`` returns the current reading and then advances it by
    ``tick`` — so successive spans get distinct, reproducible
    durations without any real time passing.  ``wall()`` tracks the
    monotonic reading offset to ``wall_start`` and does not tick.
    """

    def __init__(self, start: float = 0.0, tick: float = 0.0, wall_start: float = 0.0) -> None:
        self._start = float(start)
        self._now = float(start)
        self._tick = float(tick)
        self._wall_start = float(wall_start)

    def monotonic(self) -> float:
        reading = self._now
        self._now += self._tick
        return reading

    def wall(self) -> float:
        return self._wall_start + (self._now - self._start)

    def advance(self, seconds: float) -> None:
        """Move the clock forward by ``seconds`` (must be >= 0)."""
        if seconds < 0:
            raise ValueError(f"clocks only move forward, got advance({seconds!r})")
        self._now += float(seconds)


_default_clock: Clock = SystemClock()


def get_clock() -> Clock:
    """The process-default clock (a :class:`SystemClock` unless swapped)."""
    return _default_clock


def set_clock(clock: Clock) -> Clock:
    """Swap the process-default clock; returns the previous one."""
    global _default_clock
    previous = _default_clock
    _default_clock = clock
    return previous


@contextmanager
def use_clock(clock: Clock) -> Iterator[Clock]:
    """Temporarily install ``clock`` as the process default."""
    previous = set_clock(clock)
    try:
        yield clock
    finally:
        set_clock(previous)


def monotonic() -> float:
    """``get_clock().monotonic()`` — the sanctioned duration source."""
    return _default_clock.monotonic()


def wall() -> float:
    """``get_clock().wall()`` — the sanctioned wall stamp."""
    return _default_clock.wall()
