"""Process-local metrics: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` is a flat namespace of instruments keyed by
``(name, sorted label items)``.  Instruments are *bound once* at the
call site (``counter = registry.counter("x_total", tier="local")``) and
then incremented with a plain attribute method — the hot path is one
lock-guarded float add, cheap enough to leave on permanently (the
``bench_obs`` regression floor holds the engine overhead at <= 5%).

Two renderings, both deterministic:

* :meth:`MetricsRegistry.snapshot` → a plain dict whose canonical-JSON
  form (:meth:`MetricsRegistry.to_json`) is byte-stable: instruments
  are sorted by name then label items, histogram buckets are fixed at
  construction.
* :meth:`MetricsRegistry.render_prometheus` → Prometheus text
  exposition (``# TYPE`` headers, ``name{label="v"} value`` lines,
  cumulative ``le`` buckets with ``+Inf``), served by ``GET /metrics``.

Metrics never feed digests or records — they are observations *about*
runs (enforced by lint rule RPR007).  The registry is process-local by
design: worker processes aggregate nothing across the pool; cross-run
aggregation happens offline over trace files (``repro.obs.report``).
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from collections.abc import Mapping, Sequence

from repro.exceptions import ConfigurationError
from repro.store.digest import canonical_json

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
]

LabelItems = tuple[tuple[str, str], ...]

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")

#: Geometric latency buckets (seconds): 10us .. 10s, then +Inf.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    1e-5,
    2.5e-5,
    5e-5,
    1e-4,
    2.5e-4,
    5e-4,
    1e-3,
    2.5e-3,
    5e-3,
    1e-2,
    2.5e-2,
    5e-2,
    1e-1,
    2.5e-1,
    5e-1,
    1.0,
    2.5,
    5.0,
    10.0,
)


def _label_items(labels: Mapping[str, str]) -> LabelItems:
    items = tuple(sorted((str(key), str(value)) for key, value in labels.items()))
    for key, _ in items:
        if not _NAME_RE.match(key):
            raise ConfigurationError(f"invalid metric label name: {key!r}")
    return items


def _label_suffix(items: LabelItems) -> str:
    if not items:
        return ""
    body = ",".join(f'{key}="{value}"' for key, value in items)
    return "{" + body + "}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: LabelItems) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(f"counters only go up: inc({amount!r}) on {self.name}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can move in both directions."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: LabelItems) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket histogram (bucket uppers chosen at construction).

    ``counts[i]`` is the number of observations ``<= buckets[i]``
    exclusive of earlier buckets; ``counts[-1]`` is the overflow
    (``+Inf``) bucket.  Rendering is cumulative, Prometheus-style.
    """

    __slots__ = ("name", "labels", "buckets", "_counts", "_sum", "_lock")

    def __init__(self, name: str, labels: LabelItems, buckets: Sequence[float]) -> None:
        uppers = tuple(float(b) for b in buckets)
        if not uppers or any(b <= a for a, b in zip(uppers, uppers[1:])):
            raise ConfigurationError(
                f"histogram buckets must be non-empty and strictly increasing: {uppers!r}"
            )
        self.name = name
        self.labels = labels
        self.buckets = uppers
        self._counts = [0] * (len(uppers) + 1)
        self._sum = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value

    @property
    def count(self) -> int:
        return sum(self._counts)

    @property
    def total(self) -> float:
        return self._sum

    def bucket_counts(self) -> tuple[int, ...]:
        with self._lock:
            return tuple(self._counts)


Instrument = Counter | Gauge | Histogram


class MetricsRegistry:
    """A process-local namespace of instruments.

    get-or-create semantics: asking twice for the same ``(name,
    labels)`` returns the same object; asking for the same name with a
    different instrument kind (or different histogram buckets) is a
    :class:`ConfigurationError` — a name means one thing per process.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[tuple[str, LabelItems], Instrument] = {}
        self._kinds: dict[str, str] = {}
        self._hist_buckets: dict[str, tuple[float, ...]] = {}

    def _check_name(self, name: str, kind: str) -> None:
        if not _NAME_RE.match(name):
            raise ConfigurationError(f"invalid metric name: {name!r}")
        registered = self._kinds.setdefault(name, kind)
        if registered != kind:
            raise ConfigurationError(
                f"metric {name!r} already registered as a {registered}, not a {kind}"
            )

    def counter(self, name: str, **labels: str) -> Counter:
        items = _label_items(labels)
        with self._lock:
            self._check_name(name, "counter")
            instrument = self._instruments.setdefault((name, items), Counter(name, items))
        assert isinstance(instrument, Counter)
        return instrument

    def gauge(self, name: str, **labels: str) -> Gauge:
        items = _label_items(labels)
        with self._lock:
            self._check_name(name, "gauge")
            instrument = self._instruments.setdefault((name, items), Gauge(name, items))
        assert isinstance(instrument, Gauge)
        return instrument

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        **labels: str,
    ) -> Histogram:
        items = _label_items(labels)
        uppers = tuple(float(b) for b in buckets)
        with self._lock:
            self._check_name(name, "histogram")
            registered = self._hist_buckets.setdefault(name, uppers)
            if registered != uppers:
                raise ConfigurationError(
                    f"histogram {name!r} already registered with buckets {registered!r}"
                )
            instrument = self._instruments.setdefault(
                (name, items), Histogram(name, items, uppers)
            )
        assert isinstance(instrument, Histogram)
        return instrument

    def _sorted_instruments(self) -> list[Instrument]:
        with self._lock:
            keys = sorted(self._instruments)
            return [self._instruments[key] for key in keys]

    def snapshot(self) -> dict[str, object]:
        """A plain-data, canonically sortable view of every instrument."""
        counters: list[dict[str, object]] = []
        gauges: list[dict[str, object]] = []
        histograms: list[dict[str, object]] = []
        for instrument in self._sorted_instruments():
            labels = dict(instrument.labels)
            if isinstance(instrument, Counter):
                counters.append(
                    {"name": instrument.name, "labels": labels, "value": instrument.value}
                )
            elif isinstance(instrument, Gauge):
                gauges.append(
                    {"name": instrument.name, "labels": labels, "value": instrument.value}
                )
            else:
                histograms.append(
                    {
                        "name": instrument.name,
                        "labels": labels,
                        "buckets": list(instrument.buckets),
                        "counts": list(instrument.bucket_counts()),
                        "sum": instrument.total,
                    }
                )
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def to_json(self) -> str:
        """Canonical-JSON rendering of :meth:`snapshot` (byte-stable)."""
        return canonical_json(self.snapshot())

    def render_prometheus(self) -> str:
        """Prometheus text exposition of every instrument."""
        lines: list[str] = []
        seen_types: set[str] = set()
        for instrument in self._sorted_instruments():
            name = instrument.name
            if isinstance(instrument, Counter):
                if name not in seen_types:
                    seen_types.add(name)
                    lines.append(f"# TYPE {name} counter")
                lines.append(f"{name}{_label_suffix(instrument.labels)} {instrument.value:g}")
            elif isinstance(instrument, Gauge):
                if name not in seen_types:
                    seen_types.add(name)
                    lines.append(f"# TYPE {name} gauge")
                lines.append(f"{name}{_label_suffix(instrument.labels)} {instrument.value:g}")
            else:
                if name not in seen_types:
                    seen_types.add(name)
                    lines.append(f"# TYPE {name} histogram")
                cumulative = 0
                counts = instrument.bucket_counts()
                for upper, count in zip(instrument.buckets, counts):
                    cumulative += count
                    items = instrument.labels + (("le", f"{upper:g}"),)
                    lines.append(f"{name}_bucket{_label_suffix(items)} {cumulative}")
                cumulative += counts[-1]
                items = instrument.labels + (("le", "+Inf"),)
                lines.append(f"{name}_bucket{_label_suffix(items)} {cumulative}")
                lines.append(
                    f"{name}_sum{_label_suffix(instrument.labels)} {instrument.total:g}"
                )
                lines.append(f"{name}_count{_label_suffix(instrument.labels)} {cumulative}")
        return "\n".join(lines) + "\n"


_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-default registry (instrument bindings go through here)."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-default registry; returns the previous one.

    Existing bound instruments keep pointing at the old registry — swap
    *before* constructing the objects you want observed.
    """
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous
