"""``repro.obs``: the observability spine — metrics, traces, clocks.

Three seams, one rule:

* :mod:`repro.obs.metrics` — process-local counters / gauges /
  fixed-bucket histograms with canonical-JSON snapshots and Prometheus
  text rendering (served by ``GET /metrics``);
* :mod:`repro.obs.trace` — span tracing to append-only JSONL files,
  no-op unless a tracer is installed;
* :mod:`repro.obs.clock` — the single sanctioned wall/monotonic clock
  (lint-quarantined the way ``repro.util.rng`` is for randomness).

The rule: observability is *read-only on determinism*.  Nothing from
this package — no clock reading, metric value, or trace artifact — may
flow into a digest, manifest, or record (lint rule RPR007), and the
store layer never imports ``repro.obs``.  Records are byte-identical
with tracing on, off, or disabled mid-run; ``bench_obs`` holds the
always-on metric overhead at <= 5%.
"""

from repro.obs.clock import (
    Clock,
    FakeClock,
    SystemClock,
    get_clock,
    monotonic,
    set_clock,
    use_clock,
    wall,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.obs.trace import (
    Tracer,
    complete_span,
    current_tracer,
    event,
    install_tracer,
    span,
    trace_to,
    uninstall_tracer,
)

__all__ = [
    "Clock",
    "Counter",
    "FakeClock",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SystemClock",
    "Tracer",
    "complete_span",
    "current_tracer",
    "event",
    "get_clock",
    "get_registry",
    "install_tracer",
    "monotonic",
    "set_clock",
    "set_registry",
    "span",
    "trace_to",
    "uninstall_tracer",
    "use_clock",
    "wall",
]
