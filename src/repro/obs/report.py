"""Offline trace analysis: ``repro-experiments obs report <trace.jsonl>``.

Parses a trace file written by :mod:`repro.obs.trace` and aggregates it
into a profile: top spans by total time, the join-kernel time breakdown
by dispatch method, and cache-tier hit ratios (from the
``pi_cache_stats`` summary events the engines emit at the end of each
run).  Torn final lines — possible if a traced process was killed
mid-write — are counted, not fatal.

The payload is plain data; ``--json`` renders it with
:func:`~repro.store.digest.canonical_json`, so two renders of the same
file are byte-identical (the CI obs smoke diffs them).
"""

from __future__ import annotations

import json
from collections.abc import Iterable
from pathlib import Path

from repro.store.digest import canonical_json

__all__ = ["load_trace", "render_json", "render_text", "report_payload", "trace_report"]

#: Counter keys the engines put on every ``pi_cache_stats`` event.
_CACHE_TIERS = ("local_hits", "shared_hits", "disk_hits", "misses")


def load_trace(path: str | Path) -> tuple[list[dict[str, object]], int]:
    """Parse a JSONL trace; returns ``(events, torn_line_count)``."""
    events: list[dict[str, object]] = []
    torn = 0
    with open(Path(path), "r", encoding="utf-8") as handle:
        for line in handle:
            stripped = line.strip()
            if not stripped:
                continue
            try:
                record = json.loads(stripped)
            except json.JSONDecodeError:
                torn += 1
                continue
            if isinstance(record, dict):
                events.append(record)
            else:
                torn += 1
    return events, torn


def _span_rows(events: Iterable[dict[str, object]]) -> list[dict[str, object]]:
    totals: dict[str, dict[str, float]] = {}
    for record in events:
        dur = record.get("dur")
        name = record.get("name")
        if not isinstance(dur, (int, float)) or not isinstance(name, str):
            continue
        entry = totals.setdefault(name, {"count": 0.0, "total": 0.0, "max": 0.0})
        entry["count"] += 1
        entry["total"] += float(dur)
        entry["max"] = max(entry["max"], float(dur))
    ordered = sorted(totals.items(), key=lambda item: (-item[1]["total"], item[0]))
    return [
        {
            "name": name,
            "count": int(entry["count"]),
            "total_seconds": entry["total"],
            "mean_seconds": entry["total"] / entry["count"],
            "max_seconds": entry["max"],
        }
        for name, entry in ordered
    ]


def _kernel_rows(events: Iterable[dict[str, object]]) -> list[dict[str, object]]:
    by_method: dict[str, dict[str, float]] = {}
    for record in events:
        if record.get("name") != "join_kernel":
            continue
        dur = record.get("dur")
        if not isinstance(dur, (int, float)):
            continue
        attrs = record.get("attrs")
        method = "unknown"
        if isinstance(attrs, dict) and isinstance(attrs.get("method"), str):
            method = str(attrs["method"])
        entry = by_method.setdefault(method, {"count": 0.0, "total": 0.0})
        entry["count"] += 1
        entry["total"] += float(dur)
    rows = [
        {
            "method": method,
            "count": int(entry["count"]),
            "total_seconds": entry["total"],
        }
        for method, entry in sorted(by_method.items())
    ]
    return rows


def _cache_summary(events: Iterable[dict[str, object]]) -> dict[str, object]:
    counts = {tier: 0 for tier in _CACHE_TIERS}
    runs = 0
    for record in events:
        if record.get("name") != "pi_cache_stats":
            continue
        attrs = record.get("attrs")
        if not isinstance(attrs, dict):
            continue
        runs += 1
        for tier in _CACHE_TIERS:
            value = attrs.get(tier)
            if isinstance(value, (int, float)):
                counts[tier] += int(value)
    lookups = sum(counts.values())
    hits = lookups - counts["misses"]
    summary: dict[str, object] = dict(counts)
    summary["runs"] = runs
    summary["lookups"] = lookups
    summary["hit_ratio"] = (hits / lookups) if lookups else 0.0
    return summary


def report_payload(
    events: list[dict[str, object]], *, torn: int = 0, top: int = 10
) -> dict[str, object]:
    """Aggregate parsed trace events into the report payload."""
    spans = _span_rows(events)
    return {
        "events": len(events),
        "torn_lines": torn,
        "spans": spans[: max(top, 0)],
        "span_names": len(spans),
        "kernel": _kernel_rows(events),
        "cache": _cache_summary(events),
    }


def trace_report(path: str | Path, *, top: int = 10) -> dict[str, object]:
    """``load_trace`` + ``report_payload`` in one call."""
    events, torn = load_trace(path)
    return report_payload(events, torn=torn, top=top)


def render_json(payload: dict[str, object]) -> str:
    """Byte-stable canonical rendering (what ``--json`` prints)."""
    return canonical_json(payload)


def render_text(payload: dict[str, object]) -> str:
    """Human-readable report (column-aligned, still deterministic)."""
    lines: list[str] = []
    spans = payload["spans"]
    kernel = payload["kernel"]
    cache = payload["cache"]
    assert isinstance(spans, list) and isinstance(kernel, list) and isinstance(cache, dict)

    lines.append(f"events: {payload['events']}  (torn lines: {payload['torn_lines']})")
    lines.append("")
    lines.append("top spans by total time:")
    lines.append(f"  {'name':<24} {'count':>8} {'total_s':>12} {'mean_s':>12} {'max_s':>12}")
    for row in spans:
        lines.append(
            f"  {row['name']:<24} {row['count']:>8} "
            f"{row['total_seconds']:>12.6f} {row['mean_seconds']:>12.6f} "
            f"{row['max_seconds']:>12.6f}"
        )
    if not spans:
        lines.append("  (no spans)")
    lines.append("")
    lines.append("join-kernel time by method:")
    for row in kernel:
        lines.append(
            f"  {row['method']:<24} {row['count']:>8} {row['total_seconds']:>12.6f}"
        )
    if not kernel:
        lines.append("  (no kernel spans)")
    lines.append("")
    hit_ratio = cache["hit_ratio"]
    assert isinstance(hit_ratio, float)
    lines.append(
        "pi-cache: "
        f"lookups={cache['lookups']} hit_ratio={hit_ratio:.4f} "
        f"local={cache['local_hits']} shared={cache['shared_hits']} "
        f"disk={cache['disk_hits']} misses={cache['misses']} "
        f"(over {cache['runs']} runs)"
    )
    return "\n".join(lines) + "\n"
