"""Algorithm Precise Sigmoid (Section 5, Theorem 3.2).

Builds on Algorithm Ant: instead of one feedback bit per sample, each
sample is the **median of m rounds** of feedback, with
``m = ceil(2 c_chi / eps + 1)``.  Median amplification turns a per-round
error probability of ``(e/n^8)^{eps/c_chi}`` (what the sigmoid yields at a
deficit of only ``eps*gamma*d/c_chi``) back into ``<= 1/n^8`` per sample,
so the Algorithm-Ant analysis applies at the much smaller step size
``gamma' = eps * gamma / c_chi`` — shrinking the steady-state regret rate
to ``eps * gamma * sum_j d(j) + O(1)`` at the price of phases of ``2m``
rounds and ``O(log 1/eps)`` memory (a running median counter).

Phase layout over ``r = t mod 2m`` (paper pseudocode):

* ``r = 1``       : remember current task, start accumulating sample 1;
* ``r in [1, m]`` : accumulate feedback into sample-1 counters, hold;
* ``r = m``       : finalize median ``s^1``; working ants pause
  temporarily w.p. ``eps * c_s * gamma / c_chi``;
* ``r in [m+1, 2m-1] + {0}``: accumulate sample-2 counters, hold;
* ``r = 0``       : finalize median ``s^2``; join/leave exactly as
  Algorithm Ant but with leave probability ``gamma' / c_d``.

Note on the leave probability: the arXiv pseudocode line 22 reads
``gamma/(c_chi c_d)`` (no ``eps``), but the proof of Theorem 3.2 invokes
Theorem 3.1 "with step size gamma' = eps*gamma/c_chi", which requires
every step probability scaled consistently; we default to the consistent
``eps*gamma/(c_chi*c_d)`` and expose ``scale_leave_with_epsilon=False``
to reproduce the literal pseudocode.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.base import ColonyAlgorithm, uniform_row_choice
from repro.core.constants import DEFAULT_CONSTANTS, GAMMA_MAX, AlgorithmConstants
from repro.exceptions import ConfigurationError
from repro.types import IDLE, AssignmentVector, LackMatrix
from repro.util.validation import check_in_range

__all__ = ["PreciseSigmoidAlgorithm", "PreciseSigmoidState"]


@dataclass
class PreciseSigmoidState:
    """Mutable per-run state (struct of arrays).

    ``lack_count_1`` / ``lack_count_2`` are the median counters: the
    number of LACK reads per (ant, task) within the current sample
    window.  ``median_1`` holds the finalized first sample.
    """

    assignment: AssignmentVector
    current_task: AssignmentVector
    lack_count_1: np.ndarray  # (n, k) int32
    lack_count_2: np.ndarray  # (n, k) int32
    median_1: np.ndarray  # (n, k) bool

    @property
    def n(self) -> int:
        return int(self.assignment.shape[0])

    @property
    def k(self) -> int:
        return int(self.lack_count_1.shape[1])


class PreciseSigmoidAlgorithm(ColonyAlgorithm):
    """Algorithm Precise Sigmoid with parameters ``gamma`` and ``eps``.

    Parameters
    ----------
    gamma:
        Learning rate (>= the critical value for the guarantee; <= 1/2
        per the pseudocode header).
    eps:
        Precision parameter in ``(0, 1)``; the steady-state regret rate is
        ``eps * gamma * sum d`` (Theorem 3.2), phases have ``2m`` rounds
        with ``m = ceil(2 c_chi / eps + 1)``.
    constants:
        ``c_s`` / ``c_d`` / ``c_chi`` overrides.
    scale_leave_with_epsilon:
        See module docstring; default True (consistent step size).
    """

    name = "precise_sigmoid"

    def __init__(
        self,
        gamma: float,
        eps: float,
        constants: AlgorithmConstants = DEFAULT_CONSTANTS,
        *,
        scale_leave_with_epsilon: bool = True,
    ) -> None:
        self.gamma = check_in_range(
            "gamma", gamma, 0.0, 0.5, inclusive_low=False, inclusive_high=False
        )
        self.eps = check_in_range("eps", eps, 0.0, 1.0, inclusive_low=False, inclusive_high=False)
        # The pause/leave probabilities use the *effective* step size
        # gamma' = eps*gamma/c_chi, so Claim 4.1's c_s < 1/(2 gamma) style
        # constraints apply at gamma', not at gamma.
        effective_step = self.eps * self.gamma / constants.c_chi
        constants.validate(gamma_max=max(GAMMA_MAX, effective_step))
        self.constants = constants
        self.scale_leave_with_epsilon = bool(scale_leave_with_epsilon)
        # The tiny slack absorbs float error when eps was derived from an
        # integer window (eps = 2*c_chi/(m-1) must invert back to m).
        self.m = int(math.ceil(2.0 * constants.c_chi / self.eps + 1.0 - 1e-9))
        self.phase_length = 2 * self.m

    # -- derived probabilities ----------------------------------------------
    @property
    def step_size(self) -> float:
        """Effective step size ``gamma' = eps * gamma / c_chi``."""
        return self.eps * self.gamma / self.constants.c_chi

    @property
    def pause_probability(self) -> float:
        """Temporary pause probability ``c_s * gamma'`` at round ``m``."""
        return min(self.constants.c_s * self.step_size, 1.0)

    @property
    def leave_probability(self) -> float:
        """Permanent leave probability at the end of a phase."""
        if self.scale_leave_with_epsilon:
            return self.step_size / self.constants.c_d
        return self.gamma / (self.constants.c_chi * self.constants.c_d)

    # -- ColonyAlgorithm interface --------------------------------------------
    def create_state(
        self, n: int, k: int, initial_assignment: AssignmentVector
    ) -> PreciseSigmoidState:
        assignment = np.asarray(initial_assignment, dtype=np.int64).copy()
        if assignment.shape != (n,):
            raise ConfigurationError(f"initial assignment must have shape ({n},)")
        return PreciseSigmoidState(
            assignment=assignment,
            current_task=assignment.copy(),
            lack_count_1=np.zeros((n, k), dtype=np.int32),
            lack_count_2=np.zeros((n, k), dtype=np.int32),
            median_1=np.zeros((n, k), dtype=bool),
        )

    def step(
        self,
        state: PreciseSigmoidState,
        t: int,
        lack: LackMatrix,
        rng: np.random.Generator,
    ) -> AssignmentVector:
        m = self.m
        r = t % (2 * m)
        if r == 1:
            # Phase start: lock in the task, reset both counters.
            np.copyto(state.current_task, state.assignment)
            state.lack_count_1.fill(0)
            state.lack_count_2.fill(0)
        if 1 <= r <= m:
            state.lack_count_1 += lack
            if r == m:
                self._finalize_first_sample(state, rng)
            # Rounds 1..m-1: hold the current action (no reassignment).
        else:  # r in [m+1, 2m-1] or r == 0
            state.lack_count_2 += lack
            if r == 0:
                self._decide(state, rng)
        return state.assignment

    # -- sub-steps ----------------------------------------------------------
    def _finalize_first_sample(self, state: PreciseSigmoidState, rng: np.random.Generator) -> None:
        """Median of window 1; working ants pause temporarily."""
        # Strict majority of m reads: median is LACK iff count > m/2.
        np.copyto(state.median_1, state.lack_count_1 * 2 > self.m)
        working = state.current_task != IDLE
        pause = working & (rng.random(state.n) < self.pause_probability)
        state.assignment[pause] = IDLE
        keep = working & ~pause
        state.assignment[keep] = state.current_task[keep]

    def _decide(self, state: PreciseSigmoidState, rng: np.random.Generator) -> None:
        """Median of window 2; Algorithm-Ant decisions at step size gamma'."""
        median_2 = state.lack_count_2 * 2 > self.m
        was_idle = state.current_task == IDLE
        working = ~was_idle
        if np.any(was_idle):
            both_lack = state.median_1[was_idle] & median_2[was_idle]
            state.assignment[was_idle] = uniform_row_choice(both_lack, rng)
        if np.any(working):
            idx = np.nonzero(working)[0]
            tasks = state.current_task[idx]
            s1_own = state.median_1[idx, tasks]
            s2_own = median_2[idx, tasks]
            both_overload = ~s1_own & ~s2_own
            leave = both_overload & (rng.random(idx.size) < self.leave_probability)
            new_assign = tasks.copy()
            new_assign[leave] = IDLE
            state.assignment[idx] = new_assign

    def memory_bits(self, k: int) -> float:
        """O(log(1/eps)) counter bits per task plus the action registers.

        The paper notes the samples can be stored with "slightly smarter,
        but obvious techniques" in ``O(log(1/eps))`` bits; the counter to
        ``m = O(1/eps)`` is exactly ``log2(m)`` bits.
        """
        return float(2.0 * np.log2(k + 1) + 2.0 * k * np.log2(self.m + 1))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PreciseSigmoidAlgorithm(gamma={self.gamma:g}, eps={self.eps:g}, m={self.m}, "
            f"phase_length={self.phase_length})"
        )
