"""Algorithm Precise Adversarial (Appendix C, Theorem 3.6).

Achieves ``(1+eps)``-closeness under *adversarial* noise (the best
possible up to ``1+eps``, by the Theorem 3.5 lower bound).  Each phase of
``r1 + r2`` rounds (``r1 = ceil(32/eps)``, ``r2 = 4 r1``) has two
sub-phases:

sub-phase 1 (rounds ``1..r1``)
    Working ants *gradually* drop out: each still-working ant pauses with
    probability ``eps * gamma / 32`` per round, sweeping the load down in
    fine steps of ``~eps*gamma/32`` per round.  Each ant remembers
    ``rmin`` — the first round its own task's feedback flipped to LACK
    (``r1`` if it never did).  At round ``r1`` the ant reverts to the
    assignment it held *at round rmin*: idle if it had already paused by
    then, otherwise its task.

sub-phase 2 (rounds ``r1+1 .. r1+r2``)
    Hold that reverted assignment for ``r2 = 4 r1`` rounds.  Because the
    sweep crossed the grey zone slowly, the load at round ``rmin`` is
    within ``~eps*gamma*d`` of the demand, so holding it makes the long
    sub-phase nearly regret-free; the 4x length amortizes the sweep's
    regret down to a ``(1+eps)`` factor.

End of phase (round ``r1+r2``, i.e. ``t mod (r1+r2) == 0``)
    Exactly as Algorithm Ant: an idle-at-phase-start ant joins a uniform
    task whose feedback read LACK in **every** round of the phase; a
    working ant leaves permanently w.p. ``eps*gamma/32`` if its task read
    OVERLOAD in every round.

The all-rounds join/leave conditions also make ants switch tasks far less
often than Algorithm Ant (measured in experiment E9).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.base import ColonyAlgorithm, uniform_row_choice
from repro.core.constants import GAMMA_MAX
from repro.exceptions import ConfigurationError
from repro.types import IDLE, AssignmentVector, LackMatrix
from repro.util.validation import check_in_range

__all__ = ["PreciseAdversarialAlgorithm", "PreciseAdversarialState"]

#: Sentinel "never happened" round marker (larger than any r1).
_NEVER = np.iinfo(np.int32).max


@dataclass
class PreciseAdversarialState:
    """Mutable per-run state (struct of arrays)."""

    assignment: AssignmentVector
    current_task: AssignmentVector
    all_lack: np.ndarray  # (n, k) bool: task read LACK in every round so far
    all_overload_own: np.ndarray  # (n,) bool: own task read OVERLOAD every round
    pause_round: np.ndarray  # (n,) int32: sub-phase-1 round the ant paused (_NEVER)
    first_lack_round: np.ndarray  # (n,) int32: first round own task read LACK (_NEVER)

    @property
    def n(self) -> int:
        return int(self.assignment.shape[0])

    @property
    def k(self) -> int:
        return int(self.all_lack.shape[1])


class PreciseAdversarialAlgorithm(ColonyAlgorithm):
    """Algorithm Precise Adversarial with parameters ``gamma`` and ``eps``.

    Parameters
    ----------
    gamma:
        Learning rate, ``gamma* <= gamma <= 1/16`` (pseudocode header).
    eps:
        Precision parameter in ``(0, 1)``; closeness is ``(1+eps)`` and
        phases have ``r1 + r2 = 5 * ceil(32/eps)`` rounds.
    """

    name = "precise_adversarial"

    def __init__(self, gamma: float, eps: float) -> None:
        self.gamma = check_in_range(
            "gamma", gamma, 0.0, GAMMA_MAX, inclusive_low=False, inclusive_high=True
        )
        self.eps = check_in_range("eps", eps, 0.0, 1.0, inclusive_low=False, inclusive_high=False)
        self.r1 = int(math.ceil(32.0 / self.eps))
        self.r2 = 4 * self.r1
        self.phase_length = self.r1 + self.r2

    @property
    def pause_probability(self) -> float:
        """Per-round gradual drop-out probability ``eps * gamma / 32``."""
        return self.eps * self.gamma / 32.0

    @property
    def leave_probability(self) -> float:
        """End-of-phase permanent leave probability ``eps * gamma / 32``."""
        return self.eps * self.gamma / 32.0

    # -- ColonyAlgorithm interface --------------------------------------------
    def create_state(
        self, n: int, k: int, initial_assignment: AssignmentVector
    ) -> PreciseAdversarialState:
        assignment = np.asarray(initial_assignment, dtype=np.int64).copy()
        if assignment.shape != (n,):
            raise ConfigurationError(f"initial assignment must have shape ({n},)")
        return PreciseAdversarialState(
            assignment=assignment,
            current_task=assignment.copy(),
            all_lack=np.ones((n, k), dtype=bool),
            all_overload_own=np.ones(n, dtype=bool),
            pause_round=np.full(n, _NEVER, dtype=np.int32),
            first_lack_round=np.full(n, _NEVER, dtype=np.int32),
        )

    def step(
        self,
        state: PreciseAdversarialState,
        t: int,
        lack: LackMatrix,
        rng: np.random.Generator,
    ) -> AssignmentVector:
        r = t % self.phase_length
        if r == 1:
            self._start_phase(state)
        self._accumulate(state, r if r != 0 else self.phase_length, lack)
        if 2 <= r < self.r1:
            self._gradual_pause(state, r, rng)
        elif r == self.r1:
            self._revert_to_rmin(state)
        elif r == 0:
            self._decide(state, rng)
        # rounds r1+1 .. r1+r2-1 (and r==1): hold current assignment.
        return state.assignment

    # -- sub-steps ----------------------------------------------------------
    def _start_phase(self, state: PreciseAdversarialState) -> None:
        np.copyto(state.current_task, state.assignment)
        state.all_lack.fill(True)
        state.all_overload_own.fill(True)
        state.pause_round.fill(_NEVER)
        state.first_lack_round.fill(_NEVER)

    def _accumulate(self, state: PreciseAdversarialState, r: int, lack: LackMatrix) -> None:
        """Fold round ``r``'s feedback into the phase accumulators."""
        state.all_lack &= lack
        working = state.current_task != IDLE
        if np.any(working):
            idx = np.nonzero(working)[0]
            own_lack = lack[idx, state.current_task[idx]]
            state.all_overload_own[idx] &= ~own_lack
            # Record the first sub-phase-1 round whose own-task feedback
            # read LACK (only rounds r < r1 count toward rmin).
            if r < self.r1:
                fresh = own_lack & (state.first_lack_round[idx] == _NEVER)
                state.first_lack_round[idx[fresh]] = r
        # Idle-at-phase-start ants vacuously keep all_overload_own; it is
        # never consulted for them.

    def _gradual_pause(
        self, state: PreciseAdversarialState, r: int, rng: np.random.Generator
    ) -> None:
        still_working = (state.current_task != IDLE) & (state.assignment != IDLE)
        pause = still_working & (rng.random(state.n) < self.pause_probability)
        state.assignment[pause] = IDLE
        state.pause_round[pause] = r

    def _revert_to_rmin(self, state: PreciseAdversarialState) -> None:
        """Round r1: adopt the assignment held at round rmin for sub-phase 2."""
        working = state.current_task != IDLE
        rmin = np.minimum(state.first_lack_round, self.r1)
        # The ant was idle at round rmin iff it had paused by then.
        was_idle_at_rmin = state.pause_round <= rmin
        hold = np.where(was_idle_at_rmin, IDLE, state.current_task)
        state.assignment[working] = hold[working]

    def _decide(self, state: PreciseAdversarialState, rng: np.random.Generator) -> None:
        was_idle = state.current_task == IDLE
        working = ~was_idle
        if np.any(was_idle):
            lacked_all_phase = state.all_lack[was_idle]
            state.assignment[was_idle] = uniform_row_choice(lacked_all_phase, rng)
        if np.any(working):
            idx = np.nonzero(working)[0]
            tasks = state.current_task[idx]
            leave = state.all_overload_own[idx] & (
                rng.random(idx.size) < self.leave_probability
            )
            new_assign = tasks.copy()
            new_assign[leave] = IDLE
            state.assignment[idx] = new_assign

    def memory_bits(self, k: int) -> float:
        """O(log(1/eps)) bits: rmin / pause round counters + registers."""
        return float(
            2.0 * np.log2(k + 1) + k + 1 + 2.0 * np.log2(self.r1 + 1)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PreciseAdversarialAlgorithm(gamma={self.gamma:g}, eps={self.eps:g}, "
            f"r1={self.r1}, r2={self.r2})"
        )
