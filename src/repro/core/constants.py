"""Algorithm constants (Section 4 / Section 5 pseudocode).

The paper fixes ``c_d = 19`` and ``c_s = 2.5`` for Algorithm Ant and
``c_chi = 10`` for Algorithm Precise Sigmoid.  (The arXiv rendering of
the pseudocode shows ``c_s <- 213``, a typesetting artifact: the analysis
requires ``c_s >= 20/9 + 2/(c_d - 1) ~= 2.33`` for the stable zone to be
unavoidable (proof of Claim 4.2), ``0.9 c_s >= 2`` (Claim 4.4) and
``c_s < 1/(2 gamma) = 8`` at ``gamma = 1/16`` (Claim 4.1) — all of which
``c_s = 2.5`` satisfies and ``213`` violates.)

The constraint set is validated whenever custom constants are supplied,
so configuration mistakes surface as :class:`ConfigurationError` at
construction time instead of as silent non-convergence.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError

__all__ = ["AlgorithmConstants", "DEFAULT_CONSTANTS", "GAMMA_MAX"]

#: Largest learning rate Theorem 3.1 permits (``gamma <= 1/16``).
GAMMA_MAX: float = 1.0 / 16.0


@dataclass(frozen=True)
class AlgorithmConstants:
    """The three constants parameterizing the paper's algorithms.

    Attributes
    ----------
    c_s:
        Temporary-pause coefficient: working ants pause for the second
        sample with probability ``c_s * gamma``.  Controls how far apart
        the two samples are spaced.
    c_d:
        Permanent-leave damping: ants seeing overload in both samples
        leave with probability ``gamma / c_d``.
    c_chi:
        Step-size divisor of Algorithm Precise Sigmoid (step
        ``eps * gamma / c_chi``).
    """

    c_s: float = 2.5
    c_d: float = 19.0
    c_chi: float = 10.0

    def __post_init__(self) -> None:
        self.validate()

    def validate(self, gamma_max: float = GAMMA_MAX) -> None:
        """Check the constraint set the Section 4 analysis relies on.

        Raises :class:`ConfigurationError` listing every violated
        constraint.
        """
        problems: list[str] = []
        if self.c_d <= 1.0:
            problems.append(f"c_d must be > 1 (got {self.c_d})")
        else:
            # Claim 4.2: no jumping over the stable zone.
            floor = 20.0 / 9.0 + 2.0 / (self.c_d - 1.0)
            if self.c_s < floor:
                problems.append(
                    f"c_s={self.c_s} < 20/9 + 2/(c_d-1) = {floor:.4f} (Claim 4.2)"
                )
        # Claim 4.4: second sample must exit the grey zone from above.
        if 0.9 * self.c_s < 2.0:
            problems.append(f"0.9*c_s = {0.9 * self.c_s:.3f} < 2 (Claim 4.4)")
        # Claim 4.1: pause probability stays bounded at the largest gamma.
        if self.c_s >= 1.0 / (2.0 * gamma_max):
            problems.append(
                f"c_s={self.c_s} >= 1/(2*gamma_max) = {1.0 / (2.0 * gamma_max):.3f} (Claim 4.1)"
            )
        if self.c_chi <= 1.0:
            problems.append(f"c_chi must be > 1 (got {self.c_chi})")
        if problems:
            raise ConfigurationError(
                "invalid algorithm constants: " + "; ".join(problems)
            )

    @property
    def c_plus(self) -> float:
        """Overload-region threshold coefficient ``c+ = 1.2 c_s`` (Section 4)."""
        return 1.2 * self.c_s

    @property
    def c_minus(self) -> float:
        """Lack-region threshold coefficient ``c- = 1 + 1.2 c_s`` (Section 4)."""
        return 1.0 + 1.2 * self.c_s

    def deficit_bound_coefficient(self) -> float:
        """Coefficient of the steady-state per-task deficit bound.

        Theorem 3.1 bounds the absolute deficit by ``5 gamma d(j) + 3`` in
        all but ``O(k log n / gamma)`` rounds; the 5 is
        ``max(c+, c-) + slack``.  Exposed for the analysis layer.
        """
        return 5.0


#: The paper's constants.
DEFAULT_CONSTANTS = AlgorithmConstants()
