"""Colony-level algorithm interface.

Each paper algorithm is specified per-ant, but all ants run the same code
on i.i.d. feedback, so the library implements algorithms *colony-level*:
the per-ant state is a struct of numpy arrays and one :meth:`step` call
advances all ``n`` ants at once with boolean-mask updates (HPC guide:
vectorize, no per-agent Python loops).

Round structure (Section 2.1): round ``t >= 1`` has two sub-rounds — the
engine first samples feedback of the *previous* round's loads
(``Delta_{t-1}``) and then calls :meth:`ColonyAlgorithm.step`, which
returns the assignment in force *during* round ``t``.  Phases of
``phase_length`` rounds start at ``t = 1`` for every ant (full
synchronization, as the paper assumes).
"""

from __future__ import annotations

import abc
import enum
from typing import Any

import numpy as np

from repro.exceptions import ConfigurationError
from repro.types import IDLE, AssignmentVector, LackMatrix
from repro.util.rng import as_generator

__all__ = ["ColonyAlgorithm", "InitialAssignment", "initial_assignment_array", "uniform_row_choice"]


class InitialAssignment(enum.StrEnum):
    """Named initial configurations used by the self-stabilization experiments."""

    ALL_IDLE = "all_idle"
    RANDOM = "random"
    ALL_ON_FIRST_TASK = "all_on_first_task"
    DEMAND_MATCHED = "demand_matched"


def initial_assignment_array(
    spec: InitialAssignment | str | np.ndarray,
    n: int,
    k: int,
    rng: np.random.Generator | int | None = None,
    demands: np.ndarray | None = None,
) -> AssignmentVector:
    """Materialize an initial assignment vector.

    ``spec`` may be an explicit array (validated and copied) or one of the
    :class:`InitialAssignment` names:

    * ``all_idle`` — every ant idle (the natural cold start);
    * ``random`` — each ant independently uniform over ``{idle, 0..k-1}``;
    * ``all_on_first_task`` — the adversarial pile-up start;
    * ``demand_matched`` — exactly ``d(j)`` ants on task ``j`` (needs
      ``demands``), the already-converged start.
    """
    rng = as_generator(rng)
    if isinstance(spec, np.ndarray):
        arr = np.asarray(spec, dtype=np.int64).copy()
        if arr.shape != (n,):
            raise ConfigurationError(f"assignment must have shape ({n},), got {arr.shape}")
        if np.any((arr < IDLE) | (arr >= k)):
            raise ConfigurationError("assignment entries must be -1 (idle) or in [0, k)")
        return arr
    spec = InitialAssignment(spec)
    if spec is InitialAssignment.ALL_IDLE:
        return np.full(n, IDLE, dtype=np.int64)
    if spec is InitialAssignment.RANDOM:
        return rng.integers(IDLE, k, size=n, dtype=np.int64)
    if spec is InitialAssignment.ALL_ON_FIRST_TASK:
        return np.zeros(n, dtype=np.int64)
    if spec is InitialAssignment.DEMAND_MATCHED:
        if demands is None:
            raise ConfigurationError("demand_matched start requires the demand vector")
        demands = np.asarray(demands, dtype=np.int64)
        if int(demands.sum()) > n:
            raise ConfigurationError("demands exceed colony size")
        arr = np.full(n, IDLE, dtype=np.int64)
        pos = 0
        for j, d in enumerate(demands):
            arr[pos : pos + int(d)] = j
            pos += int(d)
        return arr
    raise ConfigurationError(f"unknown initial assignment {spec!r}")  # pragma: no cover


def uniform_row_choice(mask: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Pick one True column uniformly at random per row of a boolean matrix.

    Rows with no True entry yield ``IDLE`` (-1).  Fully vectorized:
    for each row draw ``r`` uniform in ``[0, count)`` and select the
    ``r``-th True column via a cumulative-sum argmax — O(rows * cols)
    with no Python-level loop.
    """
    if mask.ndim != 2:
        raise ConfigurationError("mask must be 2-d")
    counts = mask.sum(axis=1)
    out = np.full(mask.shape[0], IDLE, dtype=np.int64)
    rows = np.nonzero(counts > 0)[0]
    if rows.size == 0:
        return out
    sub = mask[rows]
    # r-th (0-based) True entry of each row: first column where the
    # cumulative count exceeds r.
    r = rng.integers(0, counts[rows])
    csum = np.cumsum(sub, axis=1)
    out[rows] = np.argmax(csum > r[:, np.newaxis], axis=1)
    return out


class ColonyAlgorithm(abc.ABC):
    """Vectorized per-ant algorithm run simultaneously by all ants.

    Subclasses hold only *configuration*; all mutable per-run data lives
    in the opaque state object created by :meth:`create_state`, so one
    algorithm instance can drive many concurrent simulations.
    """

    #: Human-readable identifier (also the registry key).
    name: str = "abstract"

    #: Number of rounds per synchronized phase (2 for Algorithm Ant,
    #: ``2m`` for Precise Sigmoid, ``r1+r2`` for Precise Adversarial,
    #: 1 for the trivial algorithm).
    phase_length: int = 1

    @abc.abstractmethod
    def create_state(
        self,
        n: int,
        k: int,
        initial_assignment: AssignmentVector,
    ) -> Any:
        """Allocate the per-run state for ``n`` ants and ``k`` tasks.

        ``initial_assignment`` is adopted (copied) as the assignment at
        time 0; algorithms must cope with *any* initial configuration
        (self-stabilization).
        """

    @abc.abstractmethod
    def step(
        self,
        state: Any,
        t: int,
        lack: LackMatrix,
        rng: np.random.Generator,
    ) -> AssignmentVector:
        """Advance all ants through round ``t`` (1-based).

        ``lack[i, j]`` is ant ``i``'s feedback for task ``j`` sampled from
        the loads at time ``t-1`` (True == LACK).  Returns the assignment
        vector in force during round ``t`` (a reference into ``state``;
        callers must not mutate it).
        """

    def memory_bits(self, k: int) -> float:
        """Per-ant memory the algorithm needs, in bits (for Theorem 3.3 context).

        Default accounts for storing the current action (``log2(k+1)``);
        subclasses add their sampling memory.
        """
        return float(np.log2(k + 1))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r}, phase_length={self.phase_length})"
