"""Single-scout Algorithm Ant (Remark 3.4 extension).

The paper remarks that collecting feedback from *all* tasks each round
(as in [11]) is unnecessary: the algorithms work if each ant reads only
one adaptively chosen task per round, changing only the initial cost.
This variant implements that regime for Algorithm Ant:

* a **working** ant reads only its own task's feedback (which is all
  Algorithm Ant ever uses for the leave decision anyway);
* an **idle** ant picks one *scout target* uniformly at random at the
  start of each phase, reads only that task in both samples, and joins
  it iff both reads are LACK.

Per-ant memory shrinks from ``O(k)`` bits (the idle sample register) to
two task registers and one bit — independent of ``k``.  The cost is a
``~k``-fold slower recruitment when few tasks lack workers (an idle
ant's scout hits a lacking task with probability ``~1/k``), i.e. a
larger one-off/convergence term with the same steady-state closeness —
exactly the Remark 3.4 tradeoff, measured in
``tests/core/test_scout.py`` and the E4-style comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.base import ColonyAlgorithm
from repro.core.constants import DEFAULT_CONSTANTS, GAMMA_MAX, AlgorithmConstants
from repro.exceptions import ConfigurationError
from repro.types import IDLE, AssignmentVector, LackMatrix
from repro.util.validation import check_in_range

__all__ = ["ScoutAntAlgorithm", "ScoutAntState"]


@dataclass
class ScoutAntState:
    """Struct-of-arrays state: one watched task and one sample bit per ant."""

    assignment: AssignmentVector
    current_task: AssignmentVector
    scout_target: AssignmentVector  # task an idle ant watches this phase
    s1_own: np.ndarray  # (n,) bool: first sample of the watched/own task

    @property
    def n(self) -> int:
        return int(self.assignment.shape[0])


class ScoutAntAlgorithm(ColonyAlgorithm):
    """Algorithm Ant restricted to one feedback read per round (Remark 3.4).

    Parameters match :class:`~repro.core.ant.AntAlgorithm`; the engine
    still presents the full ``(n, k)`` feedback matrix, but each ant
    consults exactly one column of its row, faithfully modelling the
    single-read regime.
    """

    name = "ant_scout"
    phase_length = 2

    def __init__(
        self,
        gamma: float,
        constants: AlgorithmConstants = DEFAULT_CONSTANTS,
    ) -> None:
        self.gamma = check_in_range(
            "gamma", gamma, 0.0, GAMMA_MAX, inclusive_low=False, inclusive_high=True
        )
        constants.validate(gamma_max=GAMMA_MAX)
        self.constants = constants

    @property
    def pause_probability(self) -> float:
        return min(self.constants.c_s * self.gamma, 1.0)

    @property
    def leave_probability(self) -> float:
        return self.gamma / self.constants.c_d

    def create_state(self, n: int, k: int, initial_assignment: AssignmentVector) -> ScoutAntState:
        assignment = np.asarray(initial_assignment, dtype=np.int64).copy()
        if assignment.shape != (n,):
            raise ConfigurationError(f"initial assignment must have shape ({n},)")
        return ScoutAntState(
            assignment=assignment,
            current_task=assignment.copy(),
            scout_target=np.zeros(n, dtype=np.int64),
            s1_own=np.zeros(n, dtype=bool),
        )

    def step(
        self,
        state: ScoutAntState,
        t: int,
        lack: LackMatrix,
        rng: np.random.Generator,
    ) -> AssignmentVector:
        n = state.n
        k = lack.shape[1]
        if t % 2 == 1:
            np.copyto(state.current_task, state.assignment)
            idle = state.current_task == IDLE
            # Idle ants re-target a uniformly random task each phase;
            # working ants watch their own task.
            state.scout_target[idle] = rng.integers(0, k, size=int(idle.sum()))
            state.scout_target[~idle] = state.current_task[~idle]
            rows = np.arange(n)
            state.s1_own = lack[rows, state.scout_target].copy()
            working = ~idle
            pause = working & (rng.random(n) < self.pause_probability)
            state.assignment[pause] = IDLE
            keep = working & ~pause
            state.assignment[keep] = state.current_task[keep]
        else:
            rows = np.arange(n)
            s2_own = lack[rows, state.scout_target]
            was_idle = state.current_task == IDLE
            # Idle ants join their scout target iff both reads were LACK.
            join = was_idle & state.s1_own & s2_own
            state.assignment[was_idle] = IDLE
            state.assignment[join] = state.scout_target[join]
            # Working ants leave on double OVERLOAD with prob gamma/c_d.
            working = ~was_idle
            both_overload = working & ~state.s1_own & ~s2_own
            leave = both_overload & (rng.random(n) < self.leave_probability)
            resume = working & ~leave
            state.assignment[resume] = state.current_task[resume]
            state.assignment[leave] = IDLE
        return state.assignment

    def memory_bits(self, k: int) -> float:
        """Two task registers + one sample bit; independent of k only in
        the sample register (task ids still need log2(k+1) bits)."""
        return float(2.0 * np.log2(k + 1) + 1.0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ScoutAntAlgorithm(gamma={self.gamma:g})"
