"""The trivial algorithm (Appendix D).

Memoryless baseline: an idle ant that sees LACK anywhere joins a
uniformly random lacking task; a working ant leaves as soon as its task
reads OVERLOAD.  The paper analyzes it in two schedules:

* **Sequential model** (Appendix D.1): one uniformly random ant acts per
  round, on feedback of the previous round.  Converges to regret
  ``Theta(gamma* sum_j d(j))`` — asymptotically matching the optimum —
  because a slight overload is seen by every *subsequent* ant, which then
  refrains from joining.
* **Synchronous model** (Appendix D.2): all ants act simultaneously and
  herd: from an empty task every idle ant joins at once, overshooting to
  ``Theta(n)``, then all leave at once, and the colony oscillates between
  ~0 and ~n workers for ``exp(Omega(n))`` steps.

The class below implements the per-ant rule; the *schedule* is chosen by
the engine (:class:`repro.sim.engine.Simulator` runs it synchronously,
:class:`repro.sim.sequential.SequentialSimulator` one ant at a time).
Experiments E10/E11 reproduce the convergence/divergence dichotomy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.base import ColonyAlgorithm, uniform_row_choice
from repro.exceptions import ConfigurationError
from repro.types import IDLE, AssignmentVector, LackMatrix

__all__ = ["TrivialAlgorithm", "TrivialState"]


@dataclass
class TrivialState:
    """State of the trivial algorithm: just the assignment (memoryless)."""

    assignment: AssignmentVector

    @property
    def n(self) -> int:
        return int(self.assignment.shape[0])


class TrivialAlgorithm(ColonyAlgorithm):
    """Appendix D baseline: join on LACK, leave on OVERLOAD, no memory.

    Parameters
    ----------
    leave_probability:
        Probability of leaving on OVERLOAD feedback (the paper's rule is
        deterministic, i.e. 1.0; fractional values give a damped variant).
    join_probability:
        Probability that an idle ant seeing some lacking task attempts to
        join at all (1.0 = the paper's rule).  Setting both probabilities
        to a small ``q`` yields the *rate-limited* trivial baseline whose
        synchronous oscillation amplitude shrinks from ``Theta(n)`` to
        ``~q * n`` — but note ``q`` must be tuned to ``1/n``-ish scales
        the ants cannot know, which is the paper's argument for a
        different mechanism altogether.
    """

    name = "trivial"
    phase_length = 1

    def __init__(self, leave_probability: float = 1.0, join_probability: float = 1.0) -> None:
        if not 0.0 < leave_probability <= 1.0:
            raise ConfigurationError(
                f"leave_probability must be in (0, 1], got {leave_probability}"
            )
        if not 0.0 < join_probability <= 1.0:
            raise ConfigurationError(
                f"join_probability must be in (0, 1], got {join_probability}"
            )
        self.leave_probability = float(leave_probability)
        self.join_probability = float(join_probability)

    def create_state(self, n: int, k: int, initial_assignment: AssignmentVector) -> TrivialState:
        assignment = np.asarray(initial_assignment, dtype=np.int64).copy()
        if assignment.shape != (n,):
            raise ConfigurationError(f"initial assignment must have shape ({n},)")
        return TrivialState(assignment=assignment)

    def step(
        self,
        state: TrivialState,
        t: int,
        lack: LackMatrix,
        rng: np.random.Generator,
    ) -> AssignmentVector:
        idle = state.assignment == IDLE
        working = ~idle
        if np.any(idle):
            idx = np.nonzero(idle)[0]
            if self.join_probability >= 1.0:
                joiners = idx
            else:
                joiners = idx[rng.random(idx.size) < self.join_probability]
            if joiners.size:
                state.assignment[joiners] = uniform_row_choice(lack[joiners], rng)
        if np.any(working):
            idx = np.nonzero(working)[0]
            tasks = state.assignment[idx]
            overload_own = ~lack[idx, tasks]
            if self.leave_probability >= 1.0:
                leave = overload_own
            else:
                leave = overload_own & (rng.random(idx.size) < self.leave_probability)
            state.assignment[idx[leave]] = IDLE
        return state.assignment

    def step_single(
        self,
        state: TrivialState,
        ant: int,
        lack_row: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        """Apply the rule to one ant (the Appendix D.1 sequential schedule).

        ``lack_row`` is the ant's feedback vector of shape ``(k,)``.
        """
        a = int(state.assignment[ant])
        if a == IDLE:
            if self.join_probability < 1.0 and rng.random() >= self.join_probability:
                return
            lacking = np.nonzero(lack_row)[0]
            if lacking.size > 0:
                state.assignment[ant] = int(lacking[rng.integers(lacking.size)])
        else:
            if not lack_row[a] and (
                self.leave_probability >= 1.0 or rng.random() < self.leave_probability
            ):
                state.assignment[ant] = IDLE

    def memory_bits(self, k: int) -> float:
        return float(np.log2(k + 1))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TrivialAlgorithm(leave_probability={self.leave_probability:g})"
