"""The paper's algorithms (its primary contribution).

* :class:`~repro.core.ant.AntAlgorithm` — Algorithm Ant (Section 4,
  Theorem 3.1): constant-memory two-sample rule, phases of 2 rounds.
* :class:`~repro.core.precise_sigmoid.PreciseSigmoidAlgorithm` —
  Algorithm Precise Sigmoid (Section 5, Theorem 3.2): median-amplified
  samples, phases of ``2m`` rounds, step size ``eps*gamma/c_chi``.
* :class:`~repro.core.precise_adversarial.PreciseAdversarialAlgorithm` —
  Algorithm Precise Adversarial (Appendix C, Theorem 3.6).
* :class:`~repro.core.trivial.TrivialAlgorithm` — Appendix D baseline
  (converges in the sequential model, oscillates forever synchronously).
"""

from repro.core.base import ColonyAlgorithm, InitialAssignment, initial_assignment_array
from repro.core.constants import AlgorithmConstants, DEFAULT_CONSTANTS
from repro.core.ant import AntAlgorithm, OneSampleAntAlgorithm
from repro.core.precise_sigmoid import PreciseSigmoidAlgorithm
from repro.core.precise_adversarial import PreciseAdversarialAlgorithm
from repro.core.scout import ScoutAntAlgorithm
from repro.core.trivial import TrivialAlgorithm
from repro.core.registry import (
    make_algorithm,
    available_algorithms,
    register_algorithm,
    unregister_algorithm,
)

__all__ = [
    "ColonyAlgorithm",
    "InitialAssignment",
    "initial_assignment_array",
    "AlgorithmConstants",
    "DEFAULT_CONSTANTS",
    "AntAlgorithm",
    "OneSampleAntAlgorithm",
    "ScoutAntAlgorithm",
    "PreciseSigmoidAlgorithm",
    "PreciseAdversarialAlgorithm",
    "TrivialAlgorithm",
    "make_algorithm",
    "available_algorithms",
    "register_algorithm",
    "unregister_algorithm",
]
