"""Algorithm Ant (Section 4, Theorem 3.1).

The paper's headline constant-memory algorithm.  Time is divided into
phases of two rounds; within a phase every ant takes two feedback samples
*spaced apart* in load:

round 1 (``t`` odd)
    Remember the current task; record sample ``s1``; every working ant
    *temporarily pauses* with probability ``c_s * gamma``, thinning the
    load by a ``~c_s*gamma`` fraction so the second sample is taken at a
    measurably lower load.

round 2 (``t`` even)
    Record sample ``s2`` (of the thinned load); then decide:

    * a working ant whose **both** samples read OVERLOAD leaves
      permanently with probability ``gamma / c_d`` (otherwise it resumes
      its task — pausing is only temporary);
    * an ant that was idle at the start of the phase joins a task chosen
      uniformly among those whose **both** samples read LACK (staying
      idle when there is none).

The two-sample spacing guarantees that w.h.p. at least one sample lies
outside the grey zone, so the load can only move in the correct
direction; a *stable zone* ``[d(1+gamma), d(1+(0.9 c_s - 1) gamma)]``
exists where neither joins nor leaves happen (Claim 4.2), which is what
makes the allocation 5(gamma/gamma*)-close (Theorem 3.1).

:class:`OneSampleAntAlgorithm` is the E14 ablation: identical decisions
but from a single un-spaced sample — it lacks the stable zone and churns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.base import ColonyAlgorithm, uniform_row_choice
from repro.core.constants import DEFAULT_CONSTANTS, GAMMA_MAX, AlgorithmConstants
from repro.exceptions import ConfigurationError
from repro.types import IDLE, AssignmentVector, LackMatrix
from repro.util.validation import check_in_range

__all__ = ["AntAlgorithm", "AntState", "OneSampleAntAlgorithm"]


@dataclass
class AntState:
    """Mutable per-run state of Algorithm Ant (struct of arrays).

    Attributes
    ----------
    assignment:
        Action in force during the current round, ``(n,)``.
    current_task:
        Task held at the start of the current phase, ``(n,)``.
    s1_lack:
        First sample of the current phase, ``(n, k)`` boolean.
    """

    assignment: AssignmentVector
    current_task: AssignmentVector
    s1_lack: np.ndarray

    @property
    def n(self) -> int:
        return int(self.assignment.shape[0])

    @property
    def k(self) -> int:
        return int(self.s1_lack.shape[1])


class AntAlgorithm(ColonyAlgorithm):
    """Algorithm Ant with learning rate ``gamma`` (Theorem 3.1).

    Parameters
    ----------
    gamma:
        Learning rate, required ``gamma* <= gamma <= 1/16``.  The
        guarantee is a ``5*gamma/gamma*``-close allocation, so the best
        regret is achieved at ``gamma = gamma*`` and smaller gamma means
        slower convergence.
    constants:
        ``c_s`` / ``c_d`` overrides (validated against the Section 4
        constraint set).
    gamma_max:
        Upper bound enforced on ``gamma``; Theorem 3.1 needs ``1/16``.
        Exposed for out-of-model stress experiments.
    """

    name = "ant"
    phase_length = 2

    def __init__(
        self,
        gamma: float,
        constants: AlgorithmConstants = DEFAULT_CONSTANTS,
        *,
        gamma_max: float = GAMMA_MAX,
    ) -> None:
        self.gamma = check_in_range(
            "gamma", gamma, 0.0, gamma_max, inclusive_low=False, inclusive_high=True
        )
        if not isinstance(constants, AlgorithmConstants):
            raise ConfigurationError("constants must be an AlgorithmConstants instance")
        constants.validate(gamma_max=gamma_max)
        self.constants = constants

    # -- derived probabilities -------------------------------------------------
    @property
    def pause_probability(self) -> float:
        """Temporary drop-out probability ``c_s * gamma`` (round 1)."""
        return min(self.constants.c_s * self.gamma, 1.0)

    @property
    def leave_probability(self) -> float:
        """Permanent leave probability ``gamma / c_d`` (round 2, both overload)."""
        return self.gamma / self.constants.c_d

    # -- ColonyAlgorithm interface ---------------------------------------------
    def create_state(self, n: int, k: int, initial_assignment: AssignmentVector) -> AntState:
        assignment = np.asarray(initial_assignment, dtype=np.int64).copy()
        if assignment.shape != (n,):
            raise ConfigurationError(f"initial assignment must have shape ({n},)")
        return AntState(
            assignment=assignment,
            current_task=assignment.copy(),
            s1_lack=np.zeros((n, k), dtype=bool),
        )

    def step(
        self,
        state: AntState,
        t: int,
        lack: LackMatrix,
        rng: np.random.Generator,
    ) -> AssignmentVector:
        if t % 2 == 1:
            self._first_round(state, lack, rng)
        else:
            self._second_round(state, lack, rng)
        return state.assignment

    # -- round implementations ---------------------------------------------
    def _first_round(self, state: AntState, lack: LackMatrix, rng: np.random.Generator) -> None:
        """Sample 1 + temporary pause (pseudocode lines 3-6)."""
        np.copyto(state.current_task, state.assignment)
        np.copyto(state.s1_lack, lack)
        working = state.current_task != IDLE
        pause = working & (rng.random(state.n) < self.pause_probability)
        state.assignment[pause] = IDLE
        # Non-paused workers keep their task; idle ants remain idle.
        keep = working & ~pause
        state.assignment[keep] = state.current_task[keep]

    def _second_round(self, state: AntState, lack: LackMatrix, rng: np.random.Generator) -> None:
        """Sample 2 + join/leave decisions (pseudocode lines 7-13)."""
        n = state.n
        was_idle = state.current_task == IDLE
        working = ~was_idle

        # Idle ants: join a uniformly random task whose both samples read LACK.
        if np.any(was_idle):
            both_lack = state.s1_lack[was_idle] & lack[was_idle]
            state.assignment[was_idle] = uniform_row_choice(both_lack, rng)

        # Working ants: leave w.p. gamma/c_d iff both samples read OVERLOAD
        # for their own task; otherwise resume (pauses were temporary).
        if np.any(working):
            idx = np.nonzero(working)[0]
            tasks = state.current_task[idx]
            s1_own = state.s1_lack[idx, tasks]
            s2_own = lack[idx, tasks]
            both_overload = ~s1_own & ~s2_own
            leave = both_overload & (rng.random(idx.size) < self.leave_probability)
            new_assign = tasks.copy()
            new_assign[leave] = IDLE
            state.assignment[idx] = new_assign

    def memory_bits(self, k: int) -> float:
        """Action + remembered task + one sample bit per task (constant in n)."""
        return float(2.0 * np.log2(k + 1) + k)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AntAlgorithm(gamma={self.gamma:g}, "
            f"c_s={self.constants.c_s}, c_d={self.constants.c_d})"
        )


class OneSampleAntAlgorithm(ColonyAlgorithm):
    """Ablation (experiment E14): Algorithm Ant without sample spacing.

    Every round each ant makes the join/leave decision from the *single*
    current sample: working ants leave w.p. ``gamma / c_d`` on OVERLOAD,
    idle ants join a uniformly random task reading LACK.  Without the
    paired, spaced samples there is no stable zone — near the demand the
    feedback is a coin flip, so joins and leaves never switch off and the
    allocation keeps churning (quantified by E14).
    """

    name = "ant_one_sample"
    phase_length = 1

    def __init__(
        self,
        gamma: float,
        constants: AlgorithmConstants = DEFAULT_CONSTANTS,
        *,
        gamma_max: float = GAMMA_MAX,
    ) -> None:
        self.gamma = check_in_range(
            "gamma", gamma, 0.0, gamma_max, inclusive_low=False, inclusive_high=True
        )
        constants.validate(gamma_max=gamma_max)
        self.constants = constants

    @property
    def leave_probability(self) -> float:
        """Leave probability per OVERLOAD round, matching Algorithm Ant's."""
        return self.gamma / self.constants.c_d

    def create_state(self, n: int, k: int, initial_assignment: AssignmentVector) -> AntState:
        assignment = np.asarray(initial_assignment, dtype=np.int64).copy()
        if assignment.shape != (n,):
            raise ConfigurationError(f"initial assignment must have shape ({n},)")
        return AntState(
            assignment=assignment,
            current_task=assignment.copy(),
            s1_lack=np.zeros((n, k), dtype=bool),
        )

    def step(
        self,
        state: AntState,
        t: int,
        lack: LackMatrix,
        rng: np.random.Generator,
    ) -> AssignmentVector:
        idle = state.assignment == IDLE
        working = ~idle
        if np.any(idle):
            state.assignment[idle] = uniform_row_choice(lack[idle], rng)
        if np.any(working):
            idx = np.nonzero(working)[0]
            tasks = state.assignment[idx]
            overload_own = ~lack[idx, tasks]
            leave = overload_own & (rng.random(idx.size) < self.leave_probability)
            state.assignment[idx[leave]] = IDLE
        return state.assignment

    def memory_bits(self, k: int) -> float:
        return float(np.log2(k + 1))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"OneSampleAntAlgorithm(gamma={self.gamma:g})"
