"""Algorithm registry: construct any algorithm by name.

Used by the experiment CLI, sweep configs and the declarative scenario
layer (:mod:`repro.scenario`) so algorithm choices are serializable
strings.  Built on the shared :class:`~repro.util.registry.Registry`
utility; sibling registries for feedback / demand / population live in
:mod:`repro.env.registry`.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from typing import Any

from repro.core.ant import AntAlgorithm, OneSampleAntAlgorithm
from repro.core.base import ColonyAlgorithm
from repro.core.precise_adversarial import PreciseAdversarialAlgorithm
from repro.core.precise_sigmoid import PreciseSigmoidAlgorithm
from repro.core.scout import ScoutAntAlgorithm
from repro.core.trivial import TrivialAlgorithm
from repro.util.registry import Registry

__all__ = [
    "ALGORITHMS",
    "make_algorithm",
    "available_algorithms",
    "register_algorithm",
    "unregister_algorithm",
]

#: The shared algorithm registry (one instance per component family).
#: Every built-in registration carries ``example=`` params — executable
#: documentation that the RPR006 lint check keeps honest (resolvable,
#: picklable, canonical-JSON round-trip).
ALGORITHMS = Registry("algorithm")
ALGORITHMS.register("ant", AntAlgorithm, example={"gamma": 0.05})
ALGORITHMS.register("ant_one_sample", OneSampleAntAlgorithm, example={"gamma": 0.05})
ALGORITHMS.register("ant_scout", ScoutAntAlgorithm, example={"gamma": 0.05})
ALGORITHMS.register(
    "precise_sigmoid", PreciseSigmoidAlgorithm, example={"gamma": 0.05, "eps": 0.25}
)
ALGORITHMS.register(
    "precise_adversarial", PreciseAdversarialAlgorithm, example={"gamma": 0.05, "eps": 0.25}
)
ALGORITHMS.register(
    "trivial", TrivialAlgorithm, example={"leave_probability": 1.0, "join_probability": 1.0}
)


def register_algorithm(
    name: str,
    factory: Callable[..., ColonyAlgorithm],
    *,
    allow_overwrite: bool = False,
    example: Mapping[str, Any] | None = None,
) -> None:
    """Register a custom algorithm factory under ``name``.

    Raises if the name is already taken (registries must be unambiguous)
    unless ``allow_overwrite=True`` is passed explicitly.  ``example``
    (representative JSON-safe keyword params) is optional for plugins but
    required by the RPR006 lint check for built-ins.
    """
    ALGORITHMS.register(name, factory, allow_overwrite=allow_overwrite, example=example)


def unregister_algorithm(name: str) -> None:
    """Remove a registered algorithm (e.g. to undo a test-local plugin)."""
    ALGORITHMS.unregister(name)


def available_algorithms() -> list[str]:
    """Sorted list of registered algorithm names."""
    return ALGORITHMS.names()


def make_algorithm(name: str, **kwargs) -> ColonyAlgorithm:
    """Instantiate a registered algorithm with keyword parameters.

    Examples
    --------
    >>> make_algorithm("ant", gamma=0.05)           # doctest: +ELLIPSIS
    AntAlgorithm(...)
    >>> make_algorithm("precise_sigmoid", gamma=0.05, eps=0.25)  # doctest: +ELLIPSIS
    PreciseSigmoidAlgorithm(...)
    """
    return ALGORITHMS.make(name, **kwargs)
