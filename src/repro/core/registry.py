"""Algorithm registry: construct any algorithm by name.

Used by the experiment CLI and sweep configs so algorithm choices are
serializable strings.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.core.ant import AntAlgorithm, OneSampleAntAlgorithm
from repro.core.base import ColonyAlgorithm
from repro.core.precise_adversarial import PreciseAdversarialAlgorithm
from repro.core.precise_sigmoid import PreciseSigmoidAlgorithm
from repro.core.scout import ScoutAntAlgorithm
from repro.core.trivial import TrivialAlgorithm
from repro.exceptions import ConfigurationError

__all__ = ["make_algorithm", "available_algorithms", "register_algorithm"]

_FACTORIES: dict[str, Callable[..., ColonyAlgorithm]] = {
    "ant": AntAlgorithm,
    "ant_one_sample": OneSampleAntAlgorithm,
    "ant_scout": ScoutAntAlgorithm,
    "precise_sigmoid": PreciseSigmoidAlgorithm,
    "precise_adversarial": PreciseAdversarialAlgorithm,
    "trivial": TrivialAlgorithm,
}


def register_algorithm(name: str, factory: Callable[..., ColonyAlgorithm]) -> None:
    """Register a custom algorithm factory under ``name``.

    Raises if the name is already taken (registries must be unambiguous).
    """
    if name in _FACTORIES:
        raise ConfigurationError(f"algorithm {name!r} is already registered")
    _FACTORIES[name] = factory


def available_algorithms() -> list[str]:
    """Sorted list of registered algorithm names."""
    return sorted(_FACTORIES)


def make_algorithm(name: str, **kwargs) -> ColonyAlgorithm:
    """Instantiate a registered algorithm with keyword parameters.

    Examples
    --------
    >>> make_algorithm("ant", gamma=0.05)           # doctest: +ELLIPSIS
    AntAlgorithm(...)
    >>> make_algorithm("precise_sigmoid", gamma=0.05, eps=0.25)  # doctest: +ELLIPSIS
    PreciseSigmoidAlgorithm(...)
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown algorithm {name!r}; known: {available_algorithms()}"
        ) from None
    return factory(**kwargs)
