"""repro.serve — async scenario service over the content-addressed store.

The serving story for the content-addressed :class:`~repro.store.ResultStore`:
an asyncio HTTP front end (stdlib only) where ``POST /scenarios`` submits a
:class:`ScenarioRequest` (a ScenarioSpec JSON + run params), keyed by the
same sweep-point digest the batch paths use — committed results are served
immediately from the store, new work is enqueued behind a worker pool that
drains through ``run_trials`` + lease-guarded store commits, and duplicate
in-flight requests coalesce onto one computation.

Layers (each importable without the ones above it):

* :mod:`repro.serve.request` — the request protocol: normalization, the
  digest/seed identity shared with ``sweep_scenario`` / ``repro.sched``,
  and the record shape (pure data, no I/O).
* :mod:`repro.serve.service` — :class:`ScenarioService`: queue, worker
  pool, lease-based crash reclaim, dedup counters, back pressure.
* :mod:`repro.serve.http` — the asyncio HTTP layer: request parsing,
  canonical-JSON response bodies, ``run_server`` / ``BackgroundServer``.

CLI entry point: ``repro-experiments serve <store-dir> [--workers N --port P]``.
"""

from repro.serve.http import BackgroundServer, record_body, run_server
from repro.serve.request import ScenarioRequest, request_record
from repro.serve.service import ScenarioService, ServiceStatus

__all__ = [
    "BackgroundServer",
    "ScenarioRequest",
    "ScenarioService",
    "ServiceStatus",
    "record_body",
    "request_record",
    "run_server",
]
