"""The asyncio HTTP front end: three routes, canonical-JSON bodies.

A deliberately small HTTP/1.1 server over ``asyncio.start_server`` —
stdlib only, no web framework — because the protocol surface is three
routes and the payloads are canonical JSON:

``POST /scenarios``
    Body: a :class:`~repro.serve.request.ScenarioRequest` JSON object
    (``{"spec": {...}, "params": {...}, "trials": N, ...}``).  Answers
    ``200`` with the full record when the digest is already committed
    (a cache hit — zero simulator rounds), or ``202`` with
    ``{"digest", "status": "pending"}`` when the work was enqueued or
    coalesced onto an in-flight computation.  ``503`` under back
    pressure (queue full), ``400`` for malformed bodies.

``GET /results/<digest>``
    ``200`` with the record, ``202`` while pending (queued here or
    leased by any service process on the store), ``500`` when the
    computation failed (the error text is in the body; resubmitting the
    POST retries), ``404`` for digests this store knows nothing about.

``GET /status``
    Queue depth, hit/miss/coalesced/computed counters, worker liveness.

Every response body is **canonical JSON** (sorted keys, compact
separators, trailing newline) rendered by one function per shape — in
particular :func:`record_body` serves both the POST cache hit and the
GET result, so the CI smoke's byte-diff of the two is exact by
construction.  Responses carry no timestamps (the wall-clock
quarantine, RPR002, covers this package): byte-identical records yield
byte-identical responses, forever.
"""

from __future__ import annotations

import asyncio
import json
import sys
import threading
from typing import Any

from repro.exceptions import ConfigurationError, ServiceBusy
from repro.obs import complete_span, get_registry
from repro.obs import monotonic as obs_monotonic
from repro.serve.request import ScenarioRequest
from repro.serve.service import ScenarioService
from repro.store import Record, canonical_json

__all__ = ["BackgroundServer", "record_body", "run_server"]

#: Request-body cap: a ScenarioSpec is a few KB; anything near this is
#: a client bug or abuse, answered ``413``.
MAX_BODY_BYTES = 8 * 1024 * 1024

_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


JSON_TYPE = "application/json"
PROMETHEUS_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _json_body(payload: dict[str, Any]) -> bytes:
    return (canonical_json(payload) + "\n").encode("utf-8")


def _route_label(path: str) -> str:
    """Bounded-cardinality route label for metrics (digests stripped)."""
    if path == "/scenarios":
        return "/scenarios"
    if path.startswith("/results/"):
        return "/results"
    if path in ("/status", "/metrics"):
        return path
    return "other"


def _request_counts() -> dict[str, int]:
    """Per-``route:status`` request totals from the metrics registry
    (the ``observability`` block of the enriched ``/status``)."""
    counts: dict[str, int] = {}
    snapshot = get_registry().snapshot()
    counters = snapshot.get("counters")
    if isinstance(counters, list):
        for row in counters:
            if not isinstance(row, dict) or row.get("name") != "repro_http_requests_total":
                continue
            labels = row.get("labels")
            value = row.get("value")
            if isinstance(labels, dict) and isinstance(value, (int, float)):
                counts[f"{labels.get('route')}:{labels.get('status')}"] = int(value)
    return counts


def _observe_request(route: str, status: int, dur: float) -> None:
    """One request's metrics + trace span (route label, never the path)."""
    registry = get_registry()
    registry.counter("repro_http_requests_total", route=route, status=str(status)).inc()
    registry.histogram("repro_http_request_seconds", route=route).observe(dur)
    complete_span("http_request", dur, route=route, status=status)


def record_body(record: Record) -> bytes:
    """The one canonical rendering of a committed record.

    Used verbatim by the POST cache-hit path and the GET result path so
    the two are byte-identical for the same digest.
    """
    return _json_body(
        {
            "digest": record.digest,
            "meta": record.meta,
            "arrays": {name: array.tolist() for name, array in sorted(record.arrays.items())},
        }
    )


class _HttpError(Exception):
    """Internal: unwound into a JSON error response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def _route(
    service: ScenarioService, method: str, path: str, body: bytes
) -> tuple[int, bytes, str]:
    """Dispatch one request; returns ``(status, body, content type)``."""
    if path == "/scenarios":
        if method != "POST":
            raise _HttpError(405, "POST /scenarios")
        try:
            data = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HttpError(400, f"request body is not valid JSON: {exc}") from exc
        try:
            request = ScenarioRequest.from_dict(data)
            digest, disposition = service.submit(request)
        except ConfigurationError as exc:
            raise _HttpError(400, str(exc)) from exc
        except ServiceBusy as exc:
            raise _HttpError(503, str(exc)) from exc
        if disposition == "hit":
            record = service.store.read_record(digest)
            if record is not None:
                return 200, record_body(record), JSON_TYPE
            # The record vanished between digest check and read (gc
            # race): the resubmission path recomputes it.
            try:
                service.submit(request)
            except ServiceBusy as exc:
                raise _HttpError(503, str(exc)) from exc
        return 202, _json_body({"digest": digest, "status": "pending"}), JSON_TYPE

    if path.startswith("/results/"):
        if method != "GET":
            raise _HttpError(405, "GET /results/<digest>")
        digest = path[len("/results/") :]
        if not digest or not all(c in "0123456789abcdef" for c in digest):
            raise _HttpError(400, f"malformed digest {digest!r}")
        state = service.state_of(digest)
        if state == "committed":
            record = service.store.read_record(digest)
            if record is not None:
                return 200, record_body(record), JSON_TYPE
            state = "unknown"
        if state == "pending":
            return 202, _json_body({"digest": digest, "status": "pending"}), JSON_TYPE
        if state == "failed":
            error = service.failure_of(digest) or "computation failed"
            return (
                500,
                _json_body({"digest": digest, "status": "failed", "error": error}),
                JSON_TYPE,
            )
        return 404, _json_body({"digest": digest, "status": "unknown"}), JSON_TYPE

    if path == "/status":
        if method != "GET":
            raise _HttpError(405, "GET /status")
        payload = service.status().to_dict()
        # Additive enrichment: per-route request totals from the
        # metrics registry (full detail lives at /metrics).
        payload["requests"] = _request_counts()
        return 200, _json_body(payload), JSON_TYPE

    if path == "/metrics":
        if method != "GET":
            raise _HttpError(405, "GET /metrics")
        text = get_registry().render_prometheus()
        return 200, text.encode("utf-8"), PROMETHEUS_TYPE

    raise _HttpError(404, f"no route for {path!r}")


def _render(status: int, body: bytes, *, keep_alive: bool, content_type: str = JSON_TYPE) -> bytes:
    head = (
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        f"\r\n"
    )
    return head.encode("ascii") + body


async def _read_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, dict[str, str], bytes] | None:
    """Parse one request; ``None`` on clean EOF between requests."""
    request_line = await reader.readline()
    if not request_line:
        return None
    try:
        method, target, _version = request_line.decode("ascii").split(None, 2)
    except (UnicodeDecodeError, ValueError) as exc:
        raise _HttpError(400, "malformed request line") from exc
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError as exc:
        raise _HttpError(400, f"bad Content-Length {length_text!r}") from exc
    if length > MAX_BODY_BYTES:
        raise _HttpError(413, f"body of {length} bytes exceeds {MAX_BODY_BYTES}")
    body = await reader.readexactly(length) if length else b""
    # Query strings are not part of the protocol; tolerate and strip.
    path = target.split("?", 1)[0]
    return method.upper(), path, headers, body


async def _handle_connection(
    service: ScenarioService, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
) -> None:
    try:
        while True:
            try:
                parsed = await _read_request(reader)
            except asyncio.IncompleteReadError:
                break
            except _HttpError as exc:
                writer.write(
                    _render(exc.status, _json_body({"error": exc.message}), keep_alive=False)
                )
                await writer.drain()
                break
            if parsed is None:
                break
            method, path, headers, body = parsed
            keep_alive = headers.get("connection", "keep-alive").lower() != "close"
            route = _route_label(path)
            started = obs_monotonic()
            content_type = JSON_TYPE
            try:
                # The route handler does blocking store I/O (reads are
                # mmap-fast); run it off the event loop so one slow
                # disk read never stalls other connections.
                status, payload, content_type = await asyncio.to_thread(
                    _route, service, method, path, body
                )
            except _HttpError as exc:
                status, payload = exc.status, _json_body({"error": exc.message})
            except Exception as exc:  # noqa: BLE001 — keep serving
                status, payload = 500, _json_body({"error": f"{type(exc).__name__}: {exc}"})
            _observe_request(route, status, obs_monotonic() - started)
            writer.write(
                _render(status, payload, keep_alive=keep_alive, content_type=content_type)
            )
            await writer.drain()
            if not keep_alive:
                break
    except (ConnectionResetError, BrokenPipeError):
        pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def _serve(
    service: ScenarioService,
    host: str,
    port: int,
    *,
    started: "threading.Event | None" = None,
    port_box: "list[int] | None" = None,
    stop: "asyncio.Event | None" = None,
) -> None:
    connections: set[asyncio.Task[Any]] = set()

    async def handler(reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            connections.add(task)
            task.add_done_callback(connections.discard)
        try:
            await _handle_connection(service, reader, writer)
        except asyncio.CancelledError:
            # Only shutdown cancels connection tasks; ending normally
            # here keeps asyncio.streams' connection_made callback from
            # re-raising when it inspects the finished task.
            return

    service.start()
    server = await asyncio.start_server(handler, host=host, port=port)
    bound_port = int(server.sockets[0].getsockname()[1])
    if port_box is not None:
        port_box.append(bound_port)
    print(f"repro-serve listening on http://{host}:{bound_port}", file=sys.stderr, flush=True)
    if started is not None:
        started.set()
    try:
        if stop is None:
            await server.serve_forever()
        else:
            await stop.wait()
    finally:
        # Stop accepting, then cancel parked keep-alive handlers BEFORE
        # wait_closed(): on 3.12+ wait_closed blocks until every handler
        # returns, and an idle connection would park one forever.
        server.close()
        for task in list(connections):
            task.cancel()
        if connections:
            await asyncio.gather(*connections, return_exceptions=True)
        await server.wait_closed()
        service.stop()


def run_server(service: ScenarioService, *, host: str = "127.0.0.1", port: int = 8787) -> None:
    """Serve until interrupted (the CLI entry point's blocking loop)."""
    try:
        asyncio.run(_serve(service, host, port))
    except KeyboardInterrupt:
        pass


class BackgroundServer:
    """A served :class:`ScenarioService` on a background thread.

    Context manager for tests and benchmarks: binds (``port=0`` picks a
    free port), starts the service's workers, and on exit stops the
    event loop and the worker pool.

    >>> with BackgroundServer(service) as server:   # doctest: +SKIP
    ...     http.client.HTTPConnection("127.0.0.1", server.port)
    """

    def __init__(self, service: ScenarioService, *, host: str = "127.0.0.1", port: int = 0) -> None:
        self.service = service
        self.host = host
        self.port = int(port)
        self._started = threading.Event()
        self._port_box: list[int] = []
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread: threading.Thread | None = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        self._stop = asyncio.Event()
        try:
            loop.run_until_complete(
                _serve(
                    self.service,
                    self.host,
                    self.port,
                    started=self._started,
                    port_box=self._port_box,
                    stop=self._stop,
                )
            )
        finally:
            loop.close()

    def __enter__(self) -> "BackgroundServer":
        self._thread = threading.Thread(target=self._run, name="serve-http", daemon=True)
        self._thread.start()
        if not self._started.wait(timeout=30.0):
            raise RuntimeError("background server failed to start within 30s")
        self.port = self._port_box[0]
        return self

    def __exit__(self, *exc: object) -> None:
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None:
            loop.call_soon_threadsafe(stop.set)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
