"""The service request protocol: one ``POST /scenarios`` body, normalized.

A :class:`ScenarioRequest` is the unit the scenario service dedups on.
It carries a full :class:`~repro.scenario.ScenarioSpec`, an optional set
of dotted parameter overrides (``{"algorithm.gamma": 0.03}``), and the
run shape (``rounds`` / ``trials`` / ``run_params`` overrides).  Its
identity — :meth:`ScenarioRequest.digest` — is **exactly** the
sweep-point digest the batch paths already use
(:func:`repro.scenario.sweep_point_digest`), and its seed root is the
same :func:`repro.scenario.sweep_point_seed`:

* a request overriding one parameter digests identically to the
  corresponding ``sweep_scenario(store=...)`` point, so a store seeded
  by a sweep serves the request as a cache hit — and a record computed
  by the service resumes the sweep ``[cached]``;
* a request overriding several parameters digests identically to the
  matching :class:`repro.sched.GridSpec` point whose axes are sorted by
  parameter name (requests canonicalize overrides in sorted order);
* a request with **no** overrides is keyed with the empty coordinate
  ``("", None)`` — impossible for real sweeps (axis parameters must be
  dotted paths), so bare-spec requests can never alias a sweep point.

Everything here is pure data + digest computation: the module performs
no I/O, so request identity can be computed (and unit-tested) without a
store or a server.
"""

from __future__ import annotations

import json
from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Any

import numpy as np
import numpy.typing as npt

from repro.exceptions import ConfigurationError
from repro.scenario.runner import sweep_point_digest, sweep_point_seed
from repro.scenario.spec import ScenarioSpec
from repro.sim.runner import TrialSummary
from repro._version import __version__
from repro.store import canonical_json
from repro.util.validation import check_integer

__all__ = ["ScenarioRequest", "request_record"]

#: Coordinate of a request that overrides nothing: real sweep coordinates
#: are dotted component paths, so the empty parameter cannot collide.
EMPTY_COORDINATE: tuple[str, None] = ("", None)


def _canonical_mapping(name: str, data: Any) -> dict[str, Any]:
    """``data`` as a canonical-JSON-round-tripped plain dict."""
    if data is None:
        return {}
    if not isinstance(data, Mapping):
        raise ConfigurationError(f"{name} must be a mapping, got {type(data).__name__}")
    try:
        normalized = json.loads(canonical_json(dict(data)))
    except ConfigurationError as exc:
        raise ConfigurationError(f"request {name} must be canonical-JSON data: {exc}") from exc
    assert isinstance(normalized, dict)
    return normalized


@dataclass(frozen=True)
class ScenarioRequest:
    """One deduplicatable unit of service work, as plain data.

    Parameters
    ----------
    spec:
        The base scenario (its ``seed`` is the request's seed root,
        exactly as in store-backed sweeps).
    params:
        Dotted component-parameter overrides applied via
        ``spec.with_param`` — the request's *coordinate*.  Overrides are
        canonicalized in sorted parameter order, so two JSON bodies
        listing them differently are the same request.
    rounds:
        Horizon; defaults to ``spec.rounds``.
    trials:
        Independent trials aggregated into the record.
    run_params:
        Extra ``run()`` kwargs merged over ``spec.run_params`` (the same
        merge ``sweep_scenario`` applies to keyword overrides).
    """

    spec: ScenarioSpec
    params: dict[str, Any] = field(default_factory=dict)
    rounds: int | None = None
    trials: int = 1
    run_params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if isinstance(self.spec, Mapping):
            object.__setattr__(self, "spec", ScenarioSpec.from_dict(dict(self.spec)))
        if not isinstance(self.spec, ScenarioSpec):
            raise ConfigurationError(
                f"request spec must be a ScenarioSpec or dict, got {type(self.spec).__name__}"
            )
        params = _canonical_mapping("params", self.params)
        for path in params:
            if "." not in path:
                raise ConfigurationError(
                    f"request params override component params like "
                    f"'algorithm.gamma'; got {path!r} (top-level spec fields "
                    "belong in the spec itself)"
                )
        # Sorted order is the canonical coordinate order (dicts preserve
        # insertion order, so sort once here and identity follows).
        object.__setattr__(self, "params", {k: params[k] for k in sorted(params)})
        rounds = self.spec.rounds if self.rounds is None else self.rounds
        object.__setattr__(self, "rounds", check_integer("rounds", rounds, minimum=1))
        object.__setattr__(self, "trials", check_integer("trials", self.trials, minimum=1))
        object.__setattr__(self, "run_params", _canonical_mapping("run_params", self.run_params))

    # ------------------------------------------------------------------
    # Wire format

    _KNOWN_KEYS = frozenset({"spec", "params", "rounds", "trials", "run_params"})

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioRequest":
        """Parse one ``POST /scenarios`` body; raises ConfigurationError."""
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"request body must be a JSON object, got {type(data).__name__}"
            )
        unknown = set(data) - cls._KNOWN_KEYS
        if unknown:
            raise ConfigurationError(
                f"unknown request keys {sorted(unknown)}; known: {sorted(cls._KNOWN_KEYS)}"
            )
        if data.get("spec") is None:
            raise ConfigurationError("request needs a 'spec' (a ScenarioSpec JSON object)")
        kwargs = {key: value for key, value in data.items() if value is not None or key == "rounds"}
        return cls(**kwargs)

    def to_dict(self) -> dict[str, Any]:
        return {
            "spec": self.spec.to_dict(),
            "params": dict(self.params),
            "rounds": self.rounds,
            "trials": self.trials,
            "run_params": dict(self.run_params),
        }

    # ------------------------------------------------------------------
    # Identity (the dedup key) — delegated to the sweep-point scheme

    def coordinate(self) -> tuple[str | list[str], Any]:
        """The request's sweep coordinate in the scalar-or-lists forms of
        :func:`repro.scenario.sweep_point_digest`."""
        if not self.params:
            return EMPTY_COORDINATE
        parameters = list(self.params)
        values = list(self.params.values())
        if len(parameters) == 1:
            return parameters[0], values[0]
        return parameters, values

    def derived_spec(self) -> ScenarioSpec:
        """The base spec with every override applied (canonical order)."""
        derived = self.spec
        for path, value in self.params.items():
            derived = derived.with_param(path, value)
        return derived

    def merged_run_params(self) -> dict[str, Any]:
        """The run kwargs a computation executes with (spec + overrides)."""
        return {**self.spec.run_params, **self.run_params}

    def label(self) -> str:
        """Record label — matches the sweep/grid label for the point."""
        if not self.params:
            return self.spec.describe()
        return ",".join(f"{p}={v}" for p, v in self.params.items())

    def seed(self) -> int:
        """Insertion-stable seed root (see :func:`sweep_point_seed`)."""
        parameter, value = self.coordinate()
        return sweep_point_seed(self.derived_spec(), parameter, value, self.spec.seed)

    def digest(self) -> str:
        """The content digest this request dedups on (the store key)."""
        parameter, value = self.coordinate()
        assert self.rounds is not None  # resolved in __post_init__
        return sweep_point_digest(
            self.derived_spec(),
            parameter,
            value,
            rounds=self.rounds,
            trials=self.trials,
            run_params=self.merged_run_params(),
            point_seed=self.seed(),
        )

    def closeness_inputs(self) -> tuple[float | None, float | None]:
        """``(gamma_star, total_demand)`` from the *base* spec — the same
        convention as ``sweep_scenario`` (closeness is always reported
        against the base demand)."""
        if self.spec.gamma_star is None:
            return None, None
        return self.spec.gamma_star, float(self.spec.initial_demand().total)


def request_record(
    request: ScenarioRequest, summary: TrialSummary
) -> tuple[dict[str, npt.NDArray[np.float64]], dict[str, Any]]:
    """``(arrays, meta)`` persisting one computed request.

    Field-for-field the manifest a store-backed sweep (or a scheduler
    worker) writes for the same point — deliberately, so a record is
    byte-identical no matter which path computed it, and no wall-clock
    field ever lands in a manifest (RPR002).
    """
    arrays: dict[str, npt.NDArray[np.float64]] = {
        "average_regrets": summary.average_regrets,
        "max_abs_deficits": summary.max_abs_deficits,
        "switches_per_round": summary.switches_per_round,
    }
    if summary.closenesses is not None:
        arrays["closenesses"] = summary.closenesses
    parameter, value = request.coordinate()
    meta = {
        "kind": "sweep_point",
        "label": summary.label,
        "trials": summary.trials,
        "rounds": summary.rounds,
        "parameter": parameter,
        "value": value,
        "repro_version": __version__,
    }
    return arrays, meta
