"""The service core: digest-keyed dedup queue + lease-guarded worker pool.

:class:`ScenarioService` is the piece between the HTTP layer and the
store.  ``submit`` computes the request's sweep-point digest and then:

* **hit** — the store already holds the record: served immediately, no
  queue slot consumed (committed digests are never refused, even under
  back pressure);
* **pending** — the same digest is already queued or being computed:
  the request *coalesces* onto the in-flight computation (the dedup
  multiplier: N identical concurrent submissions cost one simulation);
* **queued** — genuinely new work: enqueued for the worker pool, or
  refused with :class:`~repro.exceptions.ServiceBusy` once
  ``max_pending`` requests are outstanding (back pressure).

Workers drain the queue through the exact computation path a
store-backed sweep or a :mod:`repro.sched` worker uses — same seed
derivation, same label, same merged run kwargs, same record shape — so
a record is byte-identical no matter which path computed it.  Each
execution is guarded by the scheduler's lease protocol
(:class:`repro.sched.leases.LeaseManager` under
``<store>/sched/serve/``): several service processes may front one
store, a crashed process's in-flight request is reclaimed after the
TTL, and the digest-keyed idempotent commit makes the double-execution
worst case harmless.

The service is synchronous and thread-based on purpose: simulations are
CPU-bound, so the asyncio layer (:mod:`repro.serve.http`) stays
responsive by keeping computations in plain daemon threads and only
polling their results.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass
from typing import Any

from repro.exceptions import ServiceBusy
from repro.obs import get_registry
from repro.obs import monotonic as obs_monotonic
from repro.obs import span as obs_span
from repro.scenario.runner import ScenarioFactory
from repro.sched.leases import DEFAULT_LEASE_TTL, Lease, LeaseManager
from repro.serve.request import ScenarioRequest, request_record
from repro.sim.pi_cache import SharedPiCache
from repro.sim.runner import run_trials
from repro.store import ResultStore

__all__ = ["DEFAULT_MAX_PENDING", "ScenarioService", "ServiceStatus"]

#: Queue-depth cap before ``submit`` answers back pressure.  Sized for
#: "a burst of distinct cold requests", not for sustained overload: at
#: service throughput (seconds per point) a deeper queue only converts
#: client timeouts into silent staleness.
DEFAULT_MAX_PENDING = 256

#: Subdirectory of the store's sched area holding the service's leases
#: (kept apart from grid leases, which live under per-grid digests).
SERVE_LEASE_DIR = "serve"


@dataclass(frozen=True)
class ServiceStatus:
    """One consistent snapshot of the service's counters (``GET /status``)."""

    queue_depth: int
    workers: int
    workers_alive: int
    hits: int
    misses: int
    coalesced: int
    computed: int
    failed: int
    lease_denied: int
    reclaimed: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "queue_depth": self.queue_depth,
            "workers": self.workers,
            "workers_alive": self.workers_alive,
            "hits": self.hits,
            "misses": self.misses,
            "coalesced": self.coalesced,
            "computed": self.computed,
            "failed": self.failed,
            "lease_denied": self.lease_denied,
            "reclaimed": self.reclaimed,
        }


class ScenarioService:
    """Digest-keyed scenario computations over one :class:`ResultStore`.

    Parameters
    ----------
    store:
        The result store (or its directory) served and written.
    workers:
        Worker threads draining the queue.  ``0`` is allowed (accept +
        dedup only — used by tests and by back-pressure drills).
    ttl:
        Lease TTL: how long a crashed process's in-flight request stays
        claimed before another service process may reclaim it.
    max_pending:
        Back-pressure threshold for :meth:`submit`.
    shared_pi_cache:
        ``True`` attaches per-worker join-kernel caches whose disk tier
        lives inside the store (hot across requests and processes).
    """

    def __init__(
        self,
        store: ResultStore | str,
        *,
        workers: int = 2,
        ttl: float = DEFAULT_LEASE_TTL,
        max_pending: int = DEFAULT_MAX_PENDING,
        poll: float = 0.05,
        shared_pi_cache: bool = False,
    ) -> None:
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers!r}")
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending!r}")
        self.store = ResultStore.coerce(store)
        self.ttl = float(ttl)
        self.max_pending = int(max_pending)
        self.poll = float(poll)
        self._use_pi_cache = bool(shared_pi_cache)
        self._queue: queue.Queue[str | None] = queue.Queue()
        self._lock = threading.Lock()
        self._pending: dict[str, ScenarioRequest] = {}
        self._failed: dict[str, str] = {}
        self._hits = 0
        self._misses = 0
        self._coalesced = 0
        self._computed = 0
        self._failures = 0
        self._lease_denied = 0
        self._stopping = False
        self._threads: list[threading.Thread] = []
        self._n_workers = int(workers)
        # One manager (and lease dir) shared by every service process
        # fronting this store; constructed eagerly so `is_leased` works
        # even on a workerless service.
        self._manager = LeaseManager(
            self.store.sched_dir / SERVE_LEASE_DIR, ttl=self.ttl, worker_id="serve"
        )

    # ------------------------------------------------------------------
    # Lifecycle

    def start(self) -> None:
        """Start the worker pool (idempotent)."""
        with self._lock:
            if self._threads or self._n_workers == 0:
                return
            self._stopping = False
            for index in range(self._n_workers):
                thread = threading.Thread(
                    target=self._worker_loop,
                    args=(index,),
                    name=f"serve-worker-{index}",
                    daemon=True,
                )
                self._threads.append(thread)
        for thread in self._threads:
            thread.start()

    def stop(self, *, timeout: float = 5.0) -> None:
        """Stop workers after their current computation (idempotent)."""
        with self._lock:
            threads, self._threads = self._threads, []
            self._stopping = True
        for _ in threads:
            self._queue.put(None)  # one wake-up token per worker
        for thread in threads:
            thread.join(timeout=timeout)

    def __enter__(self) -> "ScenarioService":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Submission / lookup

    def submit(self, request: ScenarioRequest) -> tuple[str, str]:
        """Accept one request; returns ``(digest, disposition)``.

        Disposition is ``"hit"`` (record committed — read it from the
        store), ``"pending"`` (coalesced onto in-flight work) or
        ``"queued"`` (newly enqueued).  Raises :class:`ServiceBusy` when
        the request needs a queue slot and none is left.
        """
        digest = request.digest()
        registry = get_registry()
        if self.store.has_record(digest):
            with self._lock:
                self._hits += 1
            registry.counter("repro_serve_requests_total", disposition="hit").inc()
            return digest, "hit"
        with self._lock:
            if digest in self._pending:
                self._coalesced += 1
                registry.counter("repro_serve_requests_total", disposition="coalesced").inc()
                return digest, "pending"
            if len(self._pending) >= self.max_pending:
                registry.counter("repro_serve_requests_total", disposition="busy").inc()
                raise ServiceBusy(
                    f"{len(self._pending)} requests pending (max_pending="
                    f"{self.max_pending}); retry later"
                )
            self._misses += 1
            self._failed.pop(digest, None)  # resubmission retries a failure
            self._pending[digest] = request
        registry.counter("repro_serve_requests_total", disposition="queued").inc()
        self._queue.put(digest)
        return digest, "queued"

    def state_of(self, digest: str) -> str:
        """``"committed"`` / ``"pending"`` / ``"failed"`` / ``"unknown"``.

        A digest leased by *another* service process on the same store
        reports ``"pending"`` too — cross-process coalescing: the poll
        loop a client runs is the same either way.
        """
        if self.store.has_record(digest):
            return "committed"
        with self._lock:
            if digest in self._pending:
                return "pending"
            if digest in self._failed:
                return "failed"
        if self._manager.is_leased(digest):
            return "pending"
        return "unknown"

    def failure_of(self, digest: str) -> str | None:
        """The recorded error for a failed digest, if any."""
        with self._lock:
            return self._failed.get(digest)

    def status(self) -> ServiceStatus:
        with self._lock:
            alive = sum(1 for t in self._threads if t.is_alive())
            return ServiceStatus(
                queue_depth=len(self._pending),
                workers=self._n_workers,
                workers_alive=alive,
                hits=self._hits,
                misses=self._misses,
                coalesced=self._coalesced,
                computed=self._computed,
                failed=self._failures,
                lease_denied=self._lease_denied,
                reclaimed=self._manager.reclaimed_count(),
            )

    # ------------------------------------------------------------------
    # Worker side

    def _worker_loop(self, index: int) -> None:
        manager = LeaseManager(
            self.store.sched_dir / SERVE_LEASE_DIR,
            ttl=self.ttl,
            worker_id=f"serve-{index}",
        )
        # Per-thread cache handle: the in-memory tier stays
        # single-threaded, the disk tier is shared and process-safe.
        pi_cache = SharedPiCache(disk=self.store.pi_cache()) if self._use_pi_cache else None
        while True:
            digest = self._queue.get()
            if digest is None:
                return
            try:
                self._execute(digest, manager, pi_cache)
            finally:
                self._queue.task_done()

    def _execute(self, digest: str, manager: LeaseManager, pi_cache: SharedPiCache | None) -> None:
        with self._lock:
            request = self._pending.get(digest)
            stopping = self._stopping
        if request is None or stopping:
            if request is not None:
                with self._lock:
                    self._pending.pop(digest, None)
            return
        try:
            while not self.store.has_record(digest):
                lease = manager.try_claim(digest)
                if lease is None:
                    # Another process is computing this digest; wait for
                    # its commit (or for its heartbeat to go stale).
                    with self._lock:
                        self._lease_denied += 1
                    if self._wait_for_commit_or_stale(digest, manager):
                        break
                    continue
                try:
                    # The reclaimed holder may have committed after our
                    # staleness check — the record, not the lease, decides.
                    if self.store.has_record(digest):
                        break
                    self._compute(request, digest, lease, pi_cache)
                finally:
                    lease.release()
                break
        except Exception as exc:  # noqa: BLE001 — failures become responses
            with self._lock:
                self._failures += 1
                self._failed[digest] = f"{type(exc).__name__}: {exc}"
        finally:
            with self._lock:
                self._pending.pop(digest, None)

    def _compute(
        self,
        request: ScenarioRequest,
        digest: str,
        lease: Lease,
        pi_cache: SharedPiCache | None,
    ) -> None:
        gamma_star, total_demand = request.closeness_inputs()
        assert request.rounds is not None  # resolved on construction
        started = obs_monotonic()
        with lease.heartbeat(self.ttl / 4.0):
            with obs_span("serve_compute", digest=digest):
                summary = run_trials(
                    ScenarioFactory(request.derived_spec(), pi_cache),
                    request.rounds,
                    request.trials,
                    seed=request.seed(),
                    label=request.label(),
                    gamma_star=gamma_star,
                    total_demand=total_demand,
                    processes=0,
                    keep_results=False,
                    params=dict(request.params),
                    **request.merged_run_params(),
                )
        get_registry().histogram("repro_serve_compute_seconds").observe(
            obs_monotonic() - started
        )
        # Commit even when the lease was lost: the digest pins the
        # content, so a double commit writes identical bytes.
        arrays, meta = request_record(request, summary)
        self.store.write_record(digest, arrays, meta)
        with self._lock:
            self._computed += 1

    def _wait_for_commit_or_stale(self, digest: str, manager: LeaseManager) -> bool:
        """Poll until the record lands (True) or the lease goes stale (False)."""
        event = threading.Event()
        while True:
            if self.store.has_record(digest):
                return True
            if not manager.is_leased(digest):
                return False
            event.wait(self.poll)
