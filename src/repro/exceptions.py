"""Typed exceptions raised by the library.

Every invalid-configuration path raises a subclass of :class:`ReproError`
so callers can catch library errors without masking programming bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigurationError(ReproError, ValueError):
    """An algorithm / environment / experiment was configured inconsistently.

    Examples: negative demand, ``gamma`` outside the range required by
    Theorem 3.1, phase length that is not an even number of rounds.
    """


class AssumptionViolation(ConfigurationError):
    """A paper assumption (Assumptions 2.1 / 2.2) does not hold.

    Raised by the strict validators; most constructors accept
    ``strict=False`` to allow deliberately out-of-model experiments
    (e.g. the trivial-algorithm divergence demo uses ``d = n/4``).
    """


class SimulationError(ReproError, RuntimeError):
    """The simulation reached an internally inconsistent state.

    This always indicates a bug (e.g. loads not summing to at most ``n``),
    never a user error; it is raised by internal invariant checks.
    """


class SweepInterrupted(ReproError, RuntimeError):
    """A store-backed sweep stopped before computing every point.

    Raised by ``sweep_scenario(..., max_new_points=N)`` once the budget
    of newly computed points is exhausted.  Completed points are already
    committed to the store, so re-running the same sweep with
    ``resume=True`` continues from where it stopped — this is how the
    interrupted-sweep CI smoke simulates (deterministically) a sweep
    killed mid-run.
    """


class SchedulerError(ReproError, RuntimeError):
    """The distributed sweep scheduler could not complete a grid.

    Raised when a grid directory is missing or ambiguous, when every
    worker of an orchestrated run died before the frontier drained, or
    when results are collected for a grid with uncommitted points.
    Committed points are never lost: re-attaching workers to the same
    store resumes exactly where the frontier stopped.
    """


class ServiceError(ReproError, RuntimeError):
    """The scenario service could not accept or serve a request.

    Raised for service-level conditions (as opposed to malformed
    requests, which are :class:`ConfigurationError`): the HTTP layer
    maps subclasses to response codes.
    """


class ServiceBusy(ServiceError):
    """The scenario service's queue is full — back pressure.

    Raised by ``ScenarioService.submit`` when accepting the request
    would exceed ``max_pending``; the HTTP layer answers 503 so clients
    retry later instead of piling work onto an overloaded store.
    Already-committed digests are never refused (cache hits cost no
    queue slot).
    """


class AnalysisError(ReproError, ValueError):
    """An analysis routine received data it cannot interpret.

    Example: asking for steady-state closeness of a trace shorter than the
    requested burn-in.
    """
