"""Setup shim for environments without the ``wheel`` package.

The offline environment lacks ``wheel``, so PEP 517 editable installs
(``pip install -e .``) cannot build; this shim enables the legacy path
(``pip install -e . --no-use-pep517 --no-build-isolation``).  All project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
